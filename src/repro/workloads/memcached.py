"""Memcached driven by memtier_benchmark (table 1 parameters).

Closed-loop: ``threads × connections`` independent connections each
issue synchronous operations with a 1:10 SET:GET ratio.  The server
charges per-operation CPU in the server namespace's domain (``usr``
work — memcached's hash/LRU handling), on top of the network path.
"""

from __future__ import annotations

from repro.core.scenario import Scenario
from repro.sim.events import AllOf
from repro.workloads.base import (
    LatencyRecorder,
    WorkloadResult,
    require_positive,
    workload_rng,
)

#: Per-operation application work (cycles) on the server.
SERVER_OP_CYCLES = 5500
#: Client-side request formatting / parsing work.
CLIENT_OP_CYCLES = 2500
#: memtier defaults: small keys, small values.
REQUEST_BYTES_GET = 70
REQUEST_BYTES_SET = 70 + 128
RESPONSE_BYTES_GET = 128 + 40
RESPONSE_BYTES_SET = 8
#: Service-time lognormal sigma (not mean-normalised).  When memtier
#: and memcached share the same VM (SameNode), the 200 client threads
#: contend with the server for the 5 vCPUs — the paper observes
#: "extreme variability" in SameNode latencies (fig 12), which is why
#: hostlo "unexpectedly reaches the levels of SameNode" (fig 11).
SERVICE_SIGMA_COLOCATED = 0.90
SERVICE_SIGMA_REMOTE = 0.25


class MemtierBenchmark:
    """``memtier_benchmark`` against a memcached scenario."""

    def __init__(self, threads: int = 4, connections_per_thread: int = 50,
                 set_get_ratio: float = 1.0 / 10.0) -> None:
        require_positive(threads=threads,
                         connections_per_thread=connections_per_thread)
        if not 0.0 <= set_get_ratio <= 1.0:
            raise ValueError(f"bad SET:GET ratio {set_get_ratio!r}")
        self.connections = threads * connections_per_thread
        self.set_fraction = set_get_ratio / (1.0 + set_get_ratio)

    def run(self, scenario: Scenario, duration_s: float = 0.05) -> WorkloadResult:
        require_positive(duration_s=duration_s)
        tb = scenario.testbed
        engine = tb.engine
        forward, reverse = scenario.paths("tcp")
        server_cpu = engine.cpu(scenario.server_domain)
        client_cpu = engine.cpu(scenario.client_domain)
        rng = workload_rng(scenario, "memtier")
        recorder = LatencyRecorder(forward, rng)
        service_rng = tb.rng.stream("memtier-service")  # common random numbers
        sigma = (
            SERVICE_SIGMA_COLOCATED
            if scenario.client_domain == scenario.server_domain
            else SERVICE_SIGMA_REMOTE
        )
        t_start = tb.env.now
        t_end = t_start + duration_s
        counters = {"ops": 0, "bytes": 0}

        def connection(index: int):
            del index
            while tb.env.now < t_end:
                is_set = rng.random() < self.set_fraction
                req = REQUEST_BYTES_SET if is_set else REQUEST_BYTES_GET
                resp = RESPONSE_BYTES_SET if is_set else RESPONSE_BYTES_GET
                t0 = tb.env.now
                yield client_cpu.execute(CLIENT_OP_CYCLES, account="usr")
                # Hundreds of concurrent connections keep the NIC queues
                # full: the stack batches as under streaming.
                yield from engine.transfer(forward, req, stream=True)
                noise = float(service_rng.lognormal(mean=0.0, sigma=sigma))
                yield server_cpu.execute(SERVER_OP_CYCLES * noise,
                                         account="usr")
                yield from engine.transfer(reverse, resp, stream=True)
                if tb.env.now <= t_end:
                    recorder.record(tb.env.now - t0)
                    counters["ops"] += 1
                    counters["bytes"] += req + resp

        procs = [tb.env.process(connection(i)) for i in range(self.connections)]
        tb.env.run(until=AllOf(tb.env, procs))
        elapsed = tb.env.now - t_start
        return WorkloadResult(
            workload="memtier",
            mode=scenario.mode.value,
            message_size=REQUEST_BYTES_GET,
            duration_s=max(elapsed, duration_s),
            messages=counters["ops"],
            bytes_transferred=counters["bytes"],
            latency_samples=tuple(recorder.samples),
        )

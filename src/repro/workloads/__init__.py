"""Benchmark workloads.

Implements the paper's load generators over the simulated datapaths:

* :class:`NetperfTcpStream` / :class:`NetperfUdpRR` — the §5.1
  micro-benchmark (throughput via a windowed byte stream, latency via
  synchronous request/response transactions).
* :class:`MemtierBenchmark` — Memcached driven by memtier (table 1:
  4 threads, 50 connections/thread, SET:GET = 1:10).
* :class:`Wrk2Benchmark` — NGINX driven by wrk2 (table 1: 2 threads,
  100 connections, 10 k req/s on a 1 kB file), open-loop and therefore
  free of coordinated omission.
* :class:`KafkaProducerPerf` — kafka-producer-perf-test (table 1:
  120 000 msg/s of 100 B messages, 8192 B batches).
"""

from repro.workloads.base import WorkloadResult
from repro.workloads.kafka import KafkaProducerPerf
from repro.workloads.memcached import MemtierBenchmark
from repro.workloads.netperf import (
    NetperfTcpCRR,
    NetperfTcpRR,
    NetperfTcpStream,
    NetperfUdpRR,
)
from repro.workloads.nginx import Wrk2Benchmark

__all__ = [
    "KafkaProducerPerf",
    "MemtierBenchmark",
    "NetperfTcpCRR",
    "NetperfTcpRR",
    "NetperfTcpStream",
    "NetperfUdpRR",
    "WorkloadResult",
    "Wrk2Benchmark",
]

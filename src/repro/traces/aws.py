"""The AWS EC2 m5 on-demand catalog (paper table 2).

Resource values are also expressed relative to the largest model
(24xlarge: 96 vCPU, 384 GB), matching the normalised units of the
Google traces — 1.0 means "the whole biggest machine".
"""

from __future__ import annotations

import dataclasses

from repro.errors import CapacityError, ConfigurationError

#: The largest model's absolute resources (the relative-unit basis).
BASE_VCPUS = 96
BASE_MEMORY_GB = 384


@dataclasses.dataclass(frozen=True, order=True)
class VmModel:
    """One instance model; ordering follows price."""

    price_per_h: float
    name: str
    vcpus: int
    memory_gb: int

    def __post_init__(self) -> None:
        if self.vcpus <= 0 or self.memory_gb <= 0 or self.price_per_h <= 0:
            raise ConfigurationError(f"bad VM model {self.name!r}")

    @property
    def cpu_rel(self) -> float:
        """vCPUs relative to the largest model (table 2's third column)."""
        return self.vcpus / BASE_VCPUS

    @property
    def memory_rel(self) -> float:
        return self.memory_gb / BASE_MEMORY_GB

    def fits(self, cpu_rel: float, memory_rel: float) -> bool:
        return cpu_rel <= self.cpu_rel + 1e-12 and memory_rel <= self.memory_rel + 1e-12


#: Table 2, verbatim.
M5_CATALOG: tuple[VmModel, ...] = (
    VmModel(name="large", vcpus=2, memory_gb=8, price_per_h=0.112),
    VmModel(name="xlarge", vcpus=4, memory_gb=16, price_per_h=0.224),
    VmModel(name="2xlarge", vcpus=8, memory_gb=32, price_per_h=0.448),
    VmModel(name="4xlarge", vcpus=16, memory_gb=64, price_per_h=0.896),
    VmModel(name="12xlarge", vcpus=48, memory_gb=192, price_per_h=2.689),
    VmModel(name="24xlarge", vcpus=96, memory_gb=384, price_per_h=5.376),
)


def model(name: str) -> VmModel:
    """Look up a model by name."""
    for m in M5_CATALOG:
        if m.name == name:
            return m
    raise ConfigurationError(f"unknown m5 model {name!r}")


def cheapest_fitting(cpu_rel: float, memory_rel: float) -> VmModel:
    """The cheapest model that can host the given relative demand.

    This is the "buy a new VM of the size that best fits" rule of
    §5.3.1 step 3b.
    """
    for m in sorted(M5_CATALOG):  # price order
        if m.fits(cpu_rel, memory_rel):
            return m
    raise CapacityError(
        f"demand cpu={cpu_rel:.4f} mem={memory_rel:.4f} exceeds the "
        "largest model"
    )

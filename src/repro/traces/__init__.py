"""Workload traces and cloud catalogs for the Hostlo cost simulation.

* :mod:`repro.traces.aws` — the AWS EC2 on-demand m5 catalog of table 2,
  reproduced verbatim (absolute sizes, prices, and the resource values
  relative to the largest model that the paper uses to match Google's
  normalised units).
* :mod:`repro.traces.google` — a seeded synthetic generator shaped like
  the Google cluster traces the paper replays: per-user collections of
  pods whose container resource requests are heavy-tailed fractions of
  the largest machine.
"""

from repro.traces.aws import M5_CATALOG, VmModel, cheapest_fitting
from repro.traces.google import (
    BoundedWindow,
    TraceConfig,
    TraceContainer,
    TracePod,
    TraceUser,
    generate_trace,
    iter_pods,
    iter_users,
    stream_statistics,
)

__all__ = [
    "BoundedWindow",
    "M5_CATALOG",
    "TraceConfig",
    "TraceContainer",
    "TracePod",
    "TraceUser",
    "VmModel",
    "cheapest_fitting",
    "generate_trace",
    "iter_pods",
    "iter_users",
    "stream_statistics",
]

"""Synthetic Google-cluster-trace generator.

The paper replays the (real) Google cluster traces [29] to evaluate
Hostlo's cost savings: per user, a set of pods whose container resource
requests are expressed relative to the largest machine in the cluster.
The real traces cannot be shipped here, so this module generates a
seeded synthetic population with the relevant structure:

* many small users whose pods pack trivially (they see no savings —
  88.6 % of users in fig 9 save nothing);
* a minority of users running multi-container pods whose totals
  straddle VM sizes — splitting those pods is what saves money;
* a heavy tail of very large users (the paper's biggest saver cuts
  ~237 $/h off a ~680 $/h bill).

Only the *distribution shape* is claimed, not the real traces' values;
the packing and improvement algorithms consume exactly the same
per-pod (cpu, mem) tuples either way.
"""

from __future__ import annotations

import dataclasses
import typing as t

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.rng import RngRegistry


@dataclasses.dataclass(frozen=True)
class TraceContainer:
    """One container request, in relative units (1.0 = biggest machine)."""

    cpu: float
    memory: float

    def __post_init__(self) -> None:
        if not (0.0 < self.cpu <= 1.0 and 0.0 < self.memory <= 1.0):
            raise ConfigurationError(
                f"container request out of (0, 1]: {self.cpu}, {self.memory}"
            )


@dataclasses.dataclass(frozen=True)
class TracePod:
    """A pod: logically coupled containers deployed together."""

    name: str
    containers: tuple[TraceContainer, ...]
    splittable: bool = True

    @property
    def cpu(self) -> float:
        return sum(c.cpu for c in self.containers)

    @property
    def memory(self) -> float:
        return sum(c.memory for c in self.containers)

    @property
    def size_key(self) -> float:
        """Ordering key used by the "biggest first" schedule (§5.3.1)."""
        return max(self.cpu, self.memory)


@dataclasses.dataclass(frozen=True)
class TraceUser:
    """One cloud user and their pod population."""

    name: str
    pods: tuple[TracePod, ...]

    @property
    def total_cpu(self) -> float:
        return sum(p.cpu for p in self.pods)


@dataclasses.dataclass(frozen=True)
class TraceConfig:
    """Generator knobs (defaults fitted to reproduce fig 9's shape)."""

    users: int = 492
    seed: int = 2019
    #: fraction of users that run only tiny single-container pods.
    small_user_fraction: float = 0.715
    #: fraction of users with mid-size multi-container pods.
    medium_user_fraction: float = 0.22
    #: fraction of "whales" (the heavy tail; the rest are "large").
    whale_user_fraction: float = 0.012
    mean_pods_small: float = 3.0
    mean_pods_medium: float = 8.0
    mean_pods_large: float = 45.0
    mean_pods_whale: float = 240.0
    #: probability that a non-tiny pod straddles a VM-size boundary
    #: (the pods whose split placement actually saves money).
    straddler_fraction_medium: float = 0.03
    straddler_fraction_large: float = 0.03
    straddler_fraction_whale: float = 1.0
    #: probability that a pod refuses cross-VM placement (§4.3 limits).
    unsplittable_fraction: float = 0.05

    def __post_init__(self) -> None:
        if self.users <= 0:
            raise ConfigurationError("users must be positive")
        total = (self.small_user_fraction + self.medium_user_fraction
                 + self.whale_user_fraction)
        if not 0 <= total <= 1:
            raise ConfigurationError("user class fractions must sum within [0,1]")


#: VM-size boundaries in relative units (12xlarge, 4xlarge, 2xlarge).
_BOUNDARIES = (0.5, 1.0 / 6.0, 1.0 / 12.0)


def _regular_pod(rng: np.random.Generator, cpu_scale: float,
                 n_lo: int, n_hi: int) -> list[TraceContainer]:
    containers = []
    for _ in range(int(rng.integers(n_lo, n_hi))):
        cpu = float(np.clip(rng.lognormal(mean=np.log(cpu_scale), sigma=0.9),
                            1e-4, 0.5))
        ratio = float(np.clip(rng.lognormal(mean=0.0, sigma=0.4), 0.3, 3.0))
        memory = float(np.clip(cpu * ratio, 1e-4, 0.5))
        containers.append(TraceContainer(cpu=cpu, memory=memory))
    return containers


def _straddler_pod(rng: np.random.Generator,
                   big: bool = False) -> list[TraceContainer]:
    """A pod whose total lands just above a VM-size boundary.

    Scheduled whole, such a pod forces the next model up; with Hostlo
    its smallest containers can move away so the rest fits the smaller
    (much cheaper) model — these pods carry fig 9's savings.  Whales
    (``big=True``) mostly straddle the biggest boundary, where one pod
    wastes almost half a 24xlarge.
    """
    weights = [1.0, 0.0, 0.0] if big else [0.3, 0.4, 0.3]
    boundary = _BOUNDARIES[int(rng.choice(3, p=weights))]
    total = boundary * float(rng.uniform(1.05, 1.35))
    n = int(rng.integers(2, 7))
    shares = rng.dirichlet(np.ones(n) * 1.5)
    containers = []
    for share in shares:
        cpu = float(np.clip(total * share, 1e-4, 0.5))
        memory = float(np.clip(cpu * rng.uniform(0.8, 1.2), 1e-4, 0.5))
        containers.append(TraceContainer(cpu=cpu, memory=memory))
    return containers


def _pod(rng: np.random.Generator, name: str, kind: str,
         straddler_p: float, unsplittable_fraction: float) -> TracePod:
    """Sample one pod of the given user class."""
    if kind != "small" and rng.random() < straddler_p:
        containers = _straddler_pod(rng, big=(kind == "whale"))
    elif kind == "small":
        containers = _regular_pod(rng, 0.003, 1, 4)
    elif kind == "medium":
        containers = _regular_pod(rng, 0.012, 1, 6)
    else:  # large/whale users run chunkier multi-container pods
        containers = _regular_pod(rng, 0.05, 2, 9)
    # The Kubernetes baseline must host every pod whole on one VM, so
    # (like the real traces) no pod may exceed the largest machine.
    total = max(sum(c.cpu for c in containers), sum(c.memory for c in containers))
    if total > 0.85:
        factor = 0.85 / total
        containers = [
            TraceContainer(cpu=c.cpu * factor, memory=c.memory * factor)
            for c in containers
        ]
    return TracePod(
        name=name,
        containers=tuple(containers),
        splittable=rng.random() >= unsplittable_fraction,
    )


def generate_trace(config: TraceConfig | None = None) -> list[TraceUser]:
    """Generate the synthetic user population."""
    config = config or TraceConfig()
    registry = RngRegistry(config.seed)
    rng = registry.stream("google-trace")
    users: list[TraceUser] = []
    for index in range(config.users):
        draw = rng.random()
        if draw < config.small_user_fraction:
            kind, mean_pods, straddler_p = "small", config.mean_pods_small, 0.0
        elif draw < config.small_user_fraction + config.medium_user_fraction:
            kind, mean_pods, straddler_p = (
                "medium", config.mean_pods_medium,
                config.straddler_fraction_medium,
            )
        elif draw < (config.small_user_fraction + config.medium_user_fraction
                     + config.whale_user_fraction):
            kind, mean_pods, straddler_p = (
                "whale", config.mean_pods_whale,
                config.straddler_fraction_whale,
            )
        else:
            kind, mean_pods, straddler_p = (
                "large", config.mean_pods_large,
                config.straddler_fraction_large,
            )
        n_pods = max(1, int(rng.poisson(mean_pods)))
        pods = tuple(
            _pod(rng, f"u{index}-p{j}", kind, straddler_p,
                 config.unsplittable_fraction)
            for j in range(n_pods)
        )
        users.append(TraceUser(name=f"user-{index}", pods=pods))
    return users


def trace_statistics(users: t.Sequence[TraceUser]) -> dict[str, float]:
    """Summary statistics of a generated population (for reports)."""
    pod_counts = [len(u.pods) for u in users]
    pod_cpus = [p.cpu for u in users for p in u.pods]
    return {
        "users": float(len(users)),
        "pods": float(sum(pod_counts)),
        "mean_pods_per_user": float(np.mean(pod_counts)),
        "max_pods_per_user": float(np.max(pod_counts)),
        "mean_pod_cpu": float(np.mean(pod_cpus)),
        "max_pod_cpu": float(np.max(pod_cpus)),
    }

"""Synthetic Google-cluster-trace generator.

The paper replays the (real) Google cluster traces [29] to evaluate
Hostlo's cost savings: per user, a set of pods whose container resource
requests are expressed relative to the largest machine in the cluster.
The real traces cannot be shipped here, so this module generates a
seeded synthetic population with the relevant structure:

* many small users whose pods pack trivially (they see no savings —
  88.6 % of users in fig 9 save nothing);
* a minority of users running multi-container pods whose totals
  straddle VM sizes — splitting those pods is what saves money;
* a heavy tail of very large users (the paper's biggest saver cuts
  ~237 $/h off a ~680 $/h bill).

Only the *distribution shape* is claimed, not the real traces' values;
the packing and improvement algorithms consume exactly the same
per-pod (cpu, mem) tuples either way.

Two generation paths share the samplers:

* :func:`generate_trace` — the **eager compatibility path**: one
  sequential RNG stream, materializing the full population as a list.
  Fine at the paper's 492 users; deprecated on any hot path that
  scales beyond :data:`EAGER_LIMIT` users (it would hold millions of
  pods in memory at once).
* :func:`iter_users` / :func:`iter_pods` — the **streaming path**: a
  lazy iterator in deterministic per-seed chunks.  Chunk *i* draws
  from its own named stream (``google-trace.c<i>``), so any chunk is
  reproducible in isolation — a sharded service can generate chunk 7
  of a ten-million-user population without touching chunks 0–6, and
  consuming the iterator never materializes more than one chunk.
"""

from __future__ import annotations

import dataclasses
import typing as t
import warnings
import weakref

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.rng import RngRegistry


@dataclasses.dataclass(frozen=True, slots=True, weakref_slot=True)
class TraceContainer:
    """One container request, in relative units (1.0 = biggest machine).

    Slotted: a million-user population holds tens of millions of these,
    so per-object memory (and construction cost) is sized accordingly.
    """

    cpu: float
    memory: float

    def __post_init__(self) -> None:
        if not (0.0 < self.cpu <= 1.0 and 0.0 < self.memory <= 1.0):
            raise ConfigurationError(
                f"container request out of (0, 1]: {self.cpu}, {self.memory}"
            )


@dataclasses.dataclass(frozen=True, slots=True, weakref_slot=True)
class TracePod:
    """A pod: logically coupled containers deployed together."""

    name: str
    containers: tuple[TraceContainer, ...]
    splittable: bool = True

    @property
    def cpu(self) -> float:
        return sum(c.cpu for c in self.containers)

    @property
    def memory(self) -> float:
        return sum(c.memory for c in self.containers)

    @property
    def size_key(self) -> float:
        """Ordering key used by the "biggest first" schedule (§5.3.1)."""
        return max(self.cpu, self.memory)


@dataclasses.dataclass(frozen=True, slots=True, weakref_slot=True)
class TraceUser:
    """One cloud user and their pod population."""

    name: str
    pods: tuple[TracePod, ...]

    @property
    def total_cpu(self) -> float:
        return sum(p.cpu for p in self.pods)


@dataclasses.dataclass(frozen=True)
class TraceConfig:
    """Generator knobs (defaults fitted to reproduce fig 9's shape)."""

    users: int = 492
    seed: int = 2019
    #: fraction of users that run only tiny single-container pods.
    small_user_fraction: float = 0.715
    #: fraction of users with mid-size multi-container pods.
    medium_user_fraction: float = 0.22
    #: fraction of "whales" (the heavy tail; the rest are "large").
    whale_user_fraction: float = 0.012
    mean_pods_small: float = 3.0
    mean_pods_medium: float = 8.0
    mean_pods_large: float = 45.0
    mean_pods_whale: float = 240.0
    #: probability that a non-tiny pod straddles a VM-size boundary
    #: (the pods whose split placement actually saves money).
    straddler_fraction_medium: float = 0.03
    straddler_fraction_large: float = 0.03
    straddler_fraction_whale: float = 1.0
    #: probability that a pod refuses cross-VM placement (§4.3 limits).
    unsplittable_fraction: float = 0.05

    def __post_init__(self) -> None:
        if self.users <= 0:
            raise ConfigurationError("users must be positive")
        total = (self.small_user_fraction + self.medium_user_fraction
                 + self.whale_user_fraction)
        if not 0 <= total <= 1:
            raise ConfigurationError("user class fractions must sum within [0,1]")


#: VM-size boundaries in relative units (12xlarge, 4xlarge, 2xlarge).
_BOUNDARIES = (0.5, 1.0 / 6.0, 1.0 / 12.0)


def _regular_pod(rng: np.random.Generator, cpu_scale: float,
                 n_lo: int, n_hi: int) -> list[TraceContainer]:
    containers = []
    for _ in range(int(rng.integers(n_lo, n_hi))):
        cpu = float(np.clip(rng.lognormal(mean=np.log(cpu_scale), sigma=0.9),
                            1e-4, 0.5))
        ratio = float(np.clip(rng.lognormal(mean=0.0, sigma=0.4), 0.3, 3.0))
        memory = float(np.clip(cpu * ratio, 1e-4, 0.5))
        containers.append(TraceContainer(cpu=cpu, memory=memory))
    return containers


def _straddler_pod(rng: np.random.Generator,
                   big: bool = False) -> list[TraceContainer]:
    """A pod whose total lands just above a VM-size boundary.

    Scheduled whole, such a pod forces the next model up; with Hostlo
    its smallest containers can move away so the rest fits the smaller
    (much cheaper) model — these pods carry fig 9's savings.  Whales
    (``big=True``) mostly straddle the biggest boundary, where one pod
    wastes almost half a 24xlarge.
    """
    weights = [1.0, 0.0, 0.0] if big else [0.3, 0.4, 0.3]
    boundary = _BOUNDARIES[int(rng.choice(3, p=weights))]
    total = boundary * float(rng.uniform(1.05, 1.35))
    n = int(rng.integers(2, 7))
    shares = rng.dirichlet(np.ones(n) * 1.5)
    containers = []
    for share in shares:
        cpu = float(np.clip(total * share, 1e-4, 0.5))
        memory = float(np.clip(cpu * rng.uniform(0.8, 1.2), 1e-4, 0.5))
        containers.append(TraceContainer(cpu=cpu, memory=memory))
    return containers


def _fit_largest_machine(
    containers: list[TraceContainer],
) -> list[TraceContainer]:
    """Rescale a pod that exceeds the largest machine.

    The Kubernetes baseline must host every pod whole on one VM, so
    (like the real traces) no pod may exceed the largest machine.
    """
    total = max(sum(c.cpu for c in containers),
                sum(c.memory for c in containers))
    if total > 0.85:
        factor = 0.85 / total
        containers = [
            TraceContainer(cpu=c.cpu * factor, memory=c.memory * factor)
            for c in containers
        ]
    return containers


def _pod(rng: np.random.Generator, name: str, kind: str,
         straddler_p: float, unsplittable_fraction: float) -> TracePod:
    """Sample one pod of the given user class."""
    if kind != "small" and rng.random() < straddler_p:
        containers = _straddler_pod(rng, big=(kind == "whale"))
    elif kind == "small":
        containers = _regular_pod(rng, 0.003, 1, 4)
    elif kind == "medium":
        containers = _regular_pod(rng, 0.012, 1, 6)
    else:  # large/whale users run chunkier multi-container pods
        containers = _regular_pod(rng, 0.05, 2, 9)
    containers = _fit_largest_machine(containers)
    return TracePod(
        name=name,
        containers=tuple(containers),
        splittable=rng.random() >= unsplittable_fraction,
    )


def _classify(config: TraceConfig, draw: float) -> tuple[str, float, float]:
    """Map one uniform draw to ``(kind, mean_pods, straddler_p)``."""
    if draw < config.small_user_fraction:
        return "small", config.mean_pods_small, 0.0
    if draw < config.small_user_fraction + config.medium_user_fraction:
        return ("medium", config.mean_pods_medium,
                config.straddler_fraction_medium)
    if draw < (config.small_user_fraction + config.medium_user_fraction
               + config.whale_user_fraction):
        return ("whale", config.mean_pods_whale,
                config.straddler_fraction_whale)
    return ("large", config.mean_pods_large,
            config.straddler_fraction_large)


def _user(rng: np.random.Generator, config: TraceConfig, index: int,
          kind: str, straddler_p: float, n_pods: int) -> TraceUser:
    """Sample one user's pod population (``n_pods`` already drawn)."""
    pods = tuple(
        _pod(rng, f"u{index}-p{j}", kind, straddler_p,
             config.unsplittable_fraction)
        for j in range(n_pods)
    )
    return TraceUser(name=f"user-{index}", pods=pods)


#: Users per chunk on the streaming path.  Each chunk is generated
#: from its own named stream and freed before the next one starts, so
#: peak memory is one chunk regardless of population size.
DEFAULT_CHUNK = 4096

# Trusted constructors for the vectorized assembly loop.  A million
# users means tens of millions of containers, and the frozen-dataclass
# __init__ + __post_init__ round trip (~2µs each) dominates the whole
# generation at that scale.  Every number reaching these has already
# been clipped into the valid range by the vector draws, so the
# validation is provably redundant here — the public constructors stay
# strict for everyone else.
_new = object.__new__
_set = object.__setattr__


def _fast_container(cpu: float, memory: float) -> TraceContainer:
    c = _new(TraceContainer)
    _set(c, "cpu", cpu)
    _set(c, "memory", memory)
    return c


def _fast_pod(name: str, containers: tuple[TraceContainer, ...],
              splittable: bool) -> TracePod:
    p = _new(TracePod)
    _set(p, "name", name)
    _set(p, "containers", containers)
    _set(p, "splittable", splittable)
    return p

#: Populations beyond this warn when materialized eagerly — the
#: streaming path exists precisely so nobody holds a million users'
#: pods in one list.
EAGER_LIMIT = 100_000


def generate_trace(config: TraceConfig | None = None) -> list[TraceUser]:
    """Generate the synthetic user population, eagerly, as a list.

    This is the compatibility path (bit-identical to every published
    figure): one sequential ``google-trace`` stream.  Populations past
    :data:`EAGER_LIMIT` users warn — use :func:`iter_users` /
    :func:`iter_pods` on any path that scales, and
    :func:`stream_statistics` instead of :func:`trace_statistics`.
    """
    config = config or TraceConfig()
    if config.users > EAGER_LIMIT:
        warnings.warn(
            f"generate_trace materializes all {config.users} users; "
            "use iter_users()/iter_pods() to stream large populations",
            DeprecationWarning,
            stacklevel=2,
        )
    rng = RngRegistry(config.seed).stream("google-trace")
    users: list[TraceUser] = []
    for index in range(config.users):
        kind, mean_pods, straddler_p = _classify(config, rng.random())
        n_pods = max(1, int(rng.poisson(mean_pods)))
        users.append(_user(rng, config, index, kind, straddler_p, n_pods))
    return users


def _generate_chunk(config: TraceConfig, chunk_index: int, start: int,
                    size: int) -> list[TraceUser]:
    """Generate users ``start .. start+size`` from the chunk's stream.

    Every draw is vectorized — class draws, pod counts,
    straddler/splittable coins, container counts and container sizes
    are ~a dozen generator calls *per chunk* instead of several per
    pod (straddler shares come from per-segment-normalised gamma
    draws, the standard Dirichlet construction).  The draw schedule is
    fixed, so a chunk is one deterministic sequence keyed by
    ``(seed, chunk_index)`` alone.
    """
    rng = RngRegistry(config.seed).stream(f"google-trace.c{chunk_index}")
    thresholds = np.cumsum([
        config.small_user_fraction,
        config.medium_user_fraction,
        config.whale_user_fraction,
    ])
    # Class index per user: 0=small 1=medium 2=whale 3=large (the
    # same draw→class mapping _classify applies scalar).
    cls = np.searchsorted(thresholds, rng.random(size), side="right")
    class_means = np.array([
        config.mean_pods_small, config.mean_pods_medium,
        config.mean_pods_whale, config.mean_pods_large,
    ])
    class_straddler_p = np.array([
        0.0, config.straddler_fraction_medium,
        config.straddler_fraction_whale, config.straddler_fraction_large,
    ])
    counts = np.maximum(1, rng.poisson(class_means[cls]))

    # Flatten to per-pod arrays: which class, straddler, splittable?
    pod_cls = np.repeat(cls, counts)
    total_pods = len(pod_cls)
    straddle = rng.random(total_pods) < class_straddler_p[pod_cls]
    splittable = rng.random(total_pods) >= config.unsplittable_fraction

    # Bulk-draw every regular pod's containers in four vector calls
    # (_POD_SHAPE in class-index order; whales share the large shape).
    scale_of = np.array([0.003, 0.012, 0.05, 0.05])
    lo_of = np.array([1, 1, 2, 2])
    hi_of = np.array([4, 6, 9, 9])
    n_containers = rng.integers(lo_of[pod_cls], hi_of[pod_cls])
    n_containers[straddle] = 0  # straddlers draw theirs below
    total_containers = int(n_containers.sum())
    means = np.repeat(np.log(scale_of[pod_cls]), n_containers)
    cpus = np.clip(rng.lognormal(mean=means, sigma=0.9), 1e-4, 0.5)
    ratios = np.clip(rng.lognormal(mean=0.0, sigma=0.4,
                                   size=total_containers), 0.3, 3.0)
    memories = np.clip(cpus * ratios, 1e-4, 0.5)

    # Bulk-draw the straddler pods (the same shape _straddler_pod
    # samples scalar: a boundary, a total just above it, Dirichlet
    # shares via normalised gammas, a near-1 memory ratio each).
    big = pod_cls[straddle] == 2
    b_draw = rng.random(int(straddle.sum()))
    boundary_of = np.where(
        big, _BOUNDARIES[0],
        np.choose((b_draw > 0.3).astype(int) + (b_draw > 0.7).astype(int),
                  _BOUNDARIES),
    )
    s_totals = boundary_of * rng.uniform(1.05, 1.35, len(b_draw))
    s_counts = rng.integers(2, 7, len(b_draw))
    s_total_containers = int(s_counts.sum())
    gammas = rng.gamma(1.5, size=s_total_containers)
    s_mem_ratio = rng.uniform(0.8, 1.2, s_total_containers)
    s_segments = np.concatenate(([0], np.cumsum(s_counts)))[:-1]
    sums = np.add.reduceat(gammas, s_segments) if len(b_draw) else gammas
    s_cpus = np.clip(
        gammas / np.repeat(sums, s_counts) * np.repeat(s_totals, s_counts),
        1e-4, 0.5,
    )
    s_memories = np.clip(s_cpus * s_mem_ratio, 1e-4, 0.5)

    # Vectorized largest-machine fit (what _fit_largest_machine does
    # per pod): scale any pod whose cpu or memory total exceeds 0.85.
    def _apply_fit(values: np.ndarray, others: np.ndarray,
                   seg_counts: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        if not len(values):
            return values, others
        starts = np.concatenate(([0], np.cumsum(seg_counts)))[:-1]
        totals = np.maximum(np.add.reduceat(values, starts),
                            np.add.reduceat(others, starts))
        factors = np.where(totals > 0.85, 0.85 / totals, 1.0)
        per_item = np.repeat(factors, seg_counts)
        return values * per_item, others * per_item

    cpus, memories = _apply_fit(cpus, memories,
                                n_containers[~straddle])
    s_cpus, s_memories = _apply_fit(s_cpus, s_memories, s_counts)

    # Assemble the objects; every number above is already final.
    all_counts = n_containers.copy()
    all_counts[straddle] = s_counts
    cpu_list = cpus.tolist()
    mem_list = memories.tolist()
    s_cpu_list = s_cpus.tolist()
    s_mem_list = s_memories.tolist()
    straddle_list = straddle.tolist()
    splittable_list = splittable.tolist()
    count_list = all_counts.tolist()

    users: list[TraceUser] = []
    pod_at = 0
    container_at = 0
    s_container_at = 0
    for offset, n_pods in enumerate(counts.tolist()):
        pods = []
        for j in range(n_pods):
            n = count_list[pod_at]
            if straddle_list[pod_at]:
                end = s_container_at + n
                containers = tuple(map(
                    _fast_container,
                    s_cpu_list[s_container_at:end],
                    s_mem_list[s_container_at:end],
                ))
                s_container_at = end
            else:
                end = container_at + n
                containers = tuple(map(
                    _fast_container,
                    cpu_list[container_at:end],
                    mem_list[container_at:end],
                ))
                container_at = end
            pods.append(_fast_pod(
                f"u{start + offset}-p{j}", containers,
                splittable_list[pod_at],
            ))
            pod_at += 1
        users.append(TraceUser(name=f"user-{start + offset}",
                               pods=tuple(pods)))
    return users


def iter_users(config: TraceConfig | None = None, *,
               chunk: int = DEFAULT_CHUNK) -> t.Iterator[TraceUser]:
    """Lazily yield the population in deterministic per-seed chunks.

    Never materializes more than *chunk* users at once, so a
    million-user population streams in constant memory.  The chunk
    size is part of the draw schedule: the same ``(seed, chunk)``
    always yields the identical sequence, but different chunk sizes
    are different (equally valid) populations.
    """
    config = config or TraceConfig()
    if chunk < 1:
        raise ConfigurationError(f"chunk must be >= 1: {chunk!r}")
    for start in range(0, config.users, chunk):
        block = _generate_chunk(config, start // chunk, start,
                                min(chunk, config.users - start))
        yield from block


def iter_pods(seed: int = 2019, n_users: int = 492, *,
              config: TraceConfig | None = None,
              chunk: int = DEFAULT_CHUNK) -> t.Iterator[TracePod]:
    """Stream every pod of an *n_users* population, lazily.

    The service's million-user feed: ``iter_pods(seed=7, n_users=10**6)``
    walks tens of millions of pods without ever holding more than one
    chunk of users.  *config* overrides the distribution knobs; its
    ``seed``/``users`` fields are replaced by the arguments.
    """
    base = config or TraceConfig()
    base = dataclasses.replace(base, seed=seed, users=n_users)
    for user in iter_users(base, chunk=chunk):
        yield from user.pods


def trace_statistics(users: t.Sequence[TraceUser]) -> dict[str, float]:
    """Summary statistics of a generated population (for reports)."""
    pod_counts = [len(u.pods) for u in users]
    pod_cpus = [p.cpu for u in users for p in u.pods]
    return {
        "users": float(len(users)),
        "pods": float(sum(pod_counts)),
        "mean_pods_per_user": float(np.mean(pod_counts)),
        "max_pods_per_user": float(np.max(pod_counts)),
        "mean_pod_cpu": float(np.mean(pod_cpus)),
        "max_pod_cpu": float(np.max(pod_cpus)),
    }


def stream_statistics(users: t.Iterable[TraceUser]) -> dict[str, float]:
    """:func:`trace_statistics` in constant memory, from any iterator.

    Running sums and maxima only — consuming a million-user
    :func:`iter_users` costs a handful of floats, and the keys match
    :func:`trace_statistics` exactly.
    """
    n_users = 0
    n_pods = 0
    max_pods = 0
    cpu_total = 0.0
    cpu_max = 0.0
    for user in users:
        n_users += 1
        n_pods += len(user.pods)
        max_pods = max(max_pods, len(user.pods))
        for pod in user.pods:
            cpu = pod.cpu
            cpu_total += cpu
            if cpu > cpu_max:
                cpu_max = cpu
    if n_users == 0 or n_pods == 0:
        raise ConfigurationError("stream_statistics needs at least one user")
    return {
        "users": float(n_users),
        "pods": float(n_pods),
        "mean_pods_per_user": n_pods / n_users,
        "max_pods_per_user": float(max_pods),
        "mean_pod_cpu": cpu_total / n_pods,
        "max_pod_cpu": cpu_max,
    }


class BoundedWindow:
    """An iterator audit: no more than *window* yielded items alive.

    Wraps any iterator of weakref-able items and tracks what it has
    yielded with weak references; if the consumer (or the producer)
    ever keeps more than *window* of them reachable at once, the next
    step raises.  This is how the bounded-memory contract of
    :func:`iter_users` is *asserted* rather than assumed: stream a
    million users through a ``BoundedWindow`` and the iteration itself
    proves no list was built.
    """

    def __init__(self, source: t.Iterable[t.Any], window: int) -> None:
        if window < 1:
            raise ConfigurationError(f"window must be >= 1: {window!r}")
        self._source = iter(source)
        self.window = int(window)
        self._alive: weakref.WeakSet[t.Any] = weakref.WeakSet()
        self.peak = 0
        self.count = 0

    def __iter__(self) -> "BoundedWindow":
        return self

    def __next__(self) -> t.Any:
        alive = len(self._alive)
        if alive > self.peak:
            self.peak = alive
        if alive > self.window:
            raise MemoryError(
                f"bounded-window sentinel: {alive} items alive after "
                f"{self.count} yields (window {self.window}) — the "
                "stream is being materialized"
            )
        item = next(self._source)
        self._alive.add(item)
        self.count += 1
        return item

"""Exception hierarchy for the :mod:`repro` package.

Every error raised on purpose by this library derives from
:class:`ReproError`, so callers can catch one type at an API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class SimulationError(ReproError):
    """The discrete-event engine was used incorrectly (e.g. running a
    finished environment, or a process yielded a non-event)."""


class ConfigurationError(ReproError):
    """An experiment, workload or cost-model configuration is invalid."""


class TopologyError(ReproError):
    """The network topology is inconsistent (unknown device, duplicate
    attachment, no route between endpoints, ...)."""


class AddressExhaustedError(TopologyError):
    """An address allocator ran out of MAC/IP addresses."""


class SchedulingError(ReproError):
    """The orchestrator or the cost simulation could not place a pod."""


class CapacityError(SchedulingError):
    """A pod or container does not fit on any available machine."""


class HotplugError(ReproError):
    """The VMM could not hot-plug or hot-unplug a device.

    Carries the failing VM and device identifier when known so recovery
    code (and humans reading traces) can tell *which* hot-plug failed.
    ``retryable=False`` marks deterministic failures — e.g. an exhausted
    vNIC budget — that retrying cannot fix; recovery should fall back
    immediately instead of burning its retry budget.
    """

    def __init__(self, message: str, *, vm: str | None = None,
                 device: str | None = None, retryable: bool = True) -> None:
        super().__init__(message)
        self.vm = vm
        self.device = device
        self.retryable = retryable

    def __str__(self) -> str:
        base = super().__str__()
        context = ", ".join(
            f"{key}={value}" for key, value in
            (("vm", self.vm), ("device", self.device)) if value is not None
        )
        return f"{base} [{context}]" if context else base


class ContainerError(ReproError):
    """Container engine failure (unknown image, duplicate name, ...)."""


class FaultInjectionError(ReproError):
    """A fault plan or injector was misconfigured (unknown fault kind,
    bad probability/window, malformed plan file)."""


class RecoveryExhaustedError(ReproError):
    """Every recovery avenue for an operation failed: retries ran out
    and no fallback applied (or the fallback itself failed)."""


class CampaignError(ReproError):
    """The campaign layer (parallel experiment runner) failed."""


class JobFailedError(CampaignError):
    """A campaign job exhausted its attempts (crash, timeout, or a
    deterministic in-job exception).

    Carries the job label and the failure reason so the campaign
    report — and CI logs — can say *which* job died and why.
    """

    def __init__(self, message: str, *, job: str | None = None,
                 reason: str | None = None) -> None:
        super().__init__(message)
        self.job = job
        self.reason = reason


class PerfRegressionError(CampaignError):
    """A benchmark report regressed past the allowed threshold against
    the committed baseline (see :func:`repro.campaign.bench.compare`)."""


class ServiceError(ReproError):
    """The long-lived trace service was used incorrectly (unknown job,
    bad submission payload, operation on a closed service)."""


class AdmissionError(ServiceError):
    """The service refused a submission: the queue is at capacity, the
    client is over quota, or load shedding kicked in.

    Maps to HTTP 429; ``retry_after_s`` is the server's backoff hint
    (the ``Retry-After`` header) and ``reason`` says which limit hit —
    ``"capacity"`` (global backlog bound), ``"quota"`` (per-client),
    ``"deadline"`` (the client's deadline cannot be met at current
    queue depth) or ``"breaker"`` (the target shard's circuit breaker
    is open).
    """

    def __init__(self, message: str, *, reason: str = "capacity",
                 retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.reason = reason
        self.retry_after_s = retry_after_s


class ServiceUnavailableError(ServiceError):
    """The service is draining (graceful shutdown): no new work is
    admitted, in-flight jobs are finishing.

    Maps to HTTP 503 + ``Retry-After``; unlike :class:`AdmissionError`
    this is not load-dependent — the instance is going away and the
    client should retry against whatever replaces it.
    """

    def __init__(self, message: str, *, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s

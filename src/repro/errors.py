"""Exception hierarchy for the :mod:`repro` package.

Every error raised on purpose by this library derives from
:class:`ReproError`, so callers can catch one type at an API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class SimulationError(ReproError):
    """The discrete-event engine was used incorrectly (e.g. running a
    finished environment, or a process yielded a non-event)."""


class ConfigurationError(ReproError):
    """An experiment, workload or cost-model configuration is invalid."""


class TopologyError(ReproError):
    """The network topology is inconsistent (unknown device, duplicate
    attachment, no route between endpoints, ...)."""


class AddressExhaustedError(TopologyError):
    """An address allocator ran out of MAC/IP addresses."""


class SchedulingError(ReproError):
    """The orchestrator or the cost simulation could not place a pod."""


class CapacityError(SchedulingError):
    """A pod or container does not fit on any available machine."""


class HotplugError(ReproError):
    """The VMM could not hot-plug or hot-unplug a device."""


class ContainerError(ReproError):
    """Container engine failure (unknown image, duplicate name, ...)."""

"""Regenerates fig 8: container start-up time, NAT vs BrFusion."""

from conftest import run_once


def test_fig08_boot_time(benchmark, config):
    result = run_once(benchmark, "fig08", config)
    quantile_rows = [r for r in result.rows if r["quantile"] != "mean"]
    wins = sum(r["brfusion_better"] for r in quantile_rows)
    # Paper: ~75 % of start-up times slightly better with BrFusion.
    assert wins >= len(quantile_rows) // 2
    nat_mean = result.value("nat_ms", quantile="mean")
    brf_mean = result.value("brfusion_ms", quantile="mean")
    assert abs(brf_mean / nat_mean - 1) < 0.3  # "no overhead"

"""Regenerates fig 14: CPU usage of Memcached over Hostlo."""

from conftest import run_once


def test_fig14_cpu_memcached(benchmark, config):
    result = run_once(benchmark, "fig14", config)
    # The hostlo kernel module's CPU time shows up host-side, like
    # vhost's (§5.3.4 attribution discussion).
    hostlo_host_sys = result.value("sys_cores", mode="hostlo", entity="host")
    assert hostlo_host_sys > 0.1
    # Two VMs must be busy under hostlo.
    vm_rows = [r for r in result.rows
               if r["mode"] == "hostlo" and r["entity"].startswith("vm:")]
    assert len(vm_rows) == 2
    assert all(r["total_cores"] > 0 for r in vm_rows)

"""Regenerates the extension experiments (analytic check, rule bloat)."""

from conftest import run_once


def test_analytic_check(benchmark, config):
    result = run_once(benchmark, "analytic_check", config)
    for row in result.rows:
        assert 0.6 <= row["thr_agreement"] <= 1.2


def test_ablation_rule_bloat(benchmark, config):
    result = run_once(benchmark, "ablation_rule_bloat", config)
    nat_0 = result.value("throughput_mbps", mode="nat", neighbor_pods=0)
    nat_19 = result.value("throughput_mbps", mode="nat", neighbor_pods=19)
    assert nat_19 < nat_0


def test_ablation_scheduler_policy(benchmark, config):
    result = run_once(benchmark, "ablation_scheduler_policy", config)
    for row in result.rows:
        assert row["hostlo_cost_per_h"] <= row["kubernetes_cost_per_h"]

"""Regenerates tables 1 and 2 (configuration tables)."""

from conftest import run_once


def test_table01_macro_parameters(benchmark, config):
    result = run_once(benchmark, "table01", config)
    assert {r["application"] for r in result.rows} == {
        "Memcached", "NGINX", "Kafka",
    }


def test_table02_m5_catalog(benchmark, config):
    result = run_once(benchmark, "table02", config)
    assert result.value("price_per_h", model="large") == 0.112
    assert result.value("vCPU", model="24xlarge") == 96

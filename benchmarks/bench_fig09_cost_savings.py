"""Regenerates fig 9: Hostlo cost savings on the synthetic traces."""

from conftest import run_once


def test_fig09_cost_savings(benchmark, config):
    result = run_once(benchmark, "fig09", config)
    savers = result.value("value", metric="users saving money (%)")
    # Paper: "more than 11 % of cloud clients see their cost reduced".
    assert 8.0 <= savers <= 18.0
    max_rel = result.value("value", metric="max relative saving (%)")
    assert 30.0 <= max_rel <= 55.0  # paper ≈ 40 %

"""Regenerates fig 6: CPU usage breakdown under Kafka."""

from conftest import run_once


def test_fig06_cpu_kafka(benchmark, config):
    result = run_once(benchmark, "fig06", config)

    def soft(mode):
        return next(
            r["soft_cores"] for r in result.rows
            if r["mode"] == mode and r["entity"].startswith("vm:")
        )

    # Paper: BrFusion removes ~67 % of the guest's softirq CPU time.
    assert soft("brfusion") < 0.6 * soft("nat")

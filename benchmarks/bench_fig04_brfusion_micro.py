"""Regenerates fig 4: BrFusion micro-benchmark sweep."""

from conftest import run_once


def test_fig04_brfusion_micro(benchmark, config):
    result = run_once(benchmark, "fig04", config)
    brf = result.value("throughput_mbps", mode="brfusion", size_B=1280)
    nat = result.value("throughput_mbps", mode="nat", size_B=1280)
    nocont = result.value("throughput_mbps", mode="nocont", size_B=1280)
    # Paper: BrFusion ≈ NoCont (within 3.5 %), ≥ 2× NAT.
    assert abs(brf / nocont - 1) < 0.05
    assert brf > 1.8 * nat

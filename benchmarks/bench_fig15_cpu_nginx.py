"""Regenerates fig 15: CPU usage of NGINX over Hostlo."""

from conftest import run_once


def test_fig15_cpu_nginx(benchmark, config):
    result = run_once(benchmark, "fig15", config)

    def total(mode):
        return sum(
            r["total_cores"] for r in result.rows
            if r["mode"] == mode and r["entity"].startswith("vm:")
        )

    # Paper: NGINX's CPU increase under hostlo is modest (+17.1 %).
    assert total("hostlo") >= total("samenode") * 0.95
    assert total("hostlo") <= total("samenode") * 1.6

"""Regenerates the design-choice ablations (extensions beyond the paper)."""

from conftest import run_once


def test_ablation_hostlo_thread(benchmark, config):
    result = run_once(benchmark, "ablation_hostlo_thread", config)
    rows = sorted(result.rows, key=lambda r: r["reflect_cores"])
    assert rows[-1]["throughput_mbps"] > 2 * rows[0]["throughput_mbps"]


def test_ablation_netfilter_cost(benchmark, config):
    result = run_once(benchmark, "ablation_netfilter_cost", config)
    nat_4x = result.value("throughput_mbps", mode="nat", netfilter_scale=4.0)
    nat_half = result.value("throughput_mbps", mode="nat", netfilter_scale=0.5)
    assert nat_4x < nat_half


def test_ablation_no_batching(benchmark, config):
    result = run_once(benchmark, "ablation_no_batching", config)
    for mode in ("nocont", "overlay", "hostlo"):
        unbatched = result.value("throughput_mbps", variant="unbatched",
                                 mode=mode)
        batched = result.value("throughput_mbps", variant="batched", mode=mode)
        assert unbatched <= batched

"""Regenerates fig 7: CPU usage breakdown under NGINX."""

from conftest import run_once


def test_fig07_cpu_nginx(benchmark, config):
    result = run_once(benchmark, "fig07", config)

    def soft(mode):
        return next(
            r["soft_cores"] for r in result.rows
            if r["mode"] == mode and r["entity"].startswith("vm:")
        )

    # Same observation as fig 6, "of higher magnitude".
    assert soft("brfusion") < soft("nat")

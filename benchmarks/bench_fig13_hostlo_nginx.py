"""Regenerates fig 13: NGINX over Hostlo."""

from conftest import run_once


def test_fig13_hostlo_nginx(benchmark, config):
    result = run_once(benchmark, "fig13", config)
    hostlo = result.value("latency_us", mode="hostlo")
    nat = result.value("latency_us", mode="nat_cross")
    overlay = result.value("latency_us", mode="overlay")
    # Paper: hostlo performs much better than NAT and Overlay.
    assert hostlo < nat and hostlo < overlay

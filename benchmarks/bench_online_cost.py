"""Regenerates the online-churn cost extension."""

from conftest import run_once


def test_online_cost(benchmark, config):
    result = run_once(benchmark, "online_cost", config)
    k8s = result.value("cost_dollar_h",
                       scheduler="kubernetes (whole pods)")
    hostlo = result.value("cost_dollar_h",
                          scheduler="hostlo (split + consolidate)")
    assert hostlo < k8s

"""Regenerates fig 10: Hostlo overhead micro-benchmark."""

from conftest import run_once


def test_fig10_hostlo_micro(benchmark, config):
    result = run_once(benchmark, "fig10", config)
    hostlo = result.value("latency_us", mode="hostlo", size_B=1024)
    nat = result.value("latency_us", mode="nat_cross", size_B=1024)
    samenode = result.value("throughput_mbps", mode="samenode", size_B=1024)
    hostlo_thr = result.value("throughput_mbps", mode="hostlo", size_B=1024)
    # Paper: hostlo latency 87.3 % below NAT; SameNode ≈ 5.3× throughput.
    assert hostlo < 0.3 * nat
    assert 4.0 <= samenode / hostlo_thr <= 7.0

"""Regenerates fig 2: nested (NAT) vs single-level (NoCont) netperf."""

from conftest import run_once


def test_fig02_motivation(benchmark, config):
    result = run_once(benchmark, "fig02", config)
    nat = result.value("throughput_mbps", mode="nat")
    nocont = result.value("throughput_mbps", mode="nocont")
    # Paper: ~68 % throughput degradation, ~31 % latency increase.
    assert nat < 0.6 * nocont
    assert result.value("latency_us", mode="nat") > result.value(
        "latency_us", mode="nocont"
    )

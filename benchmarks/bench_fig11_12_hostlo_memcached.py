"""Regenerates figs 11–12: Memcached over Hostlo."""

from conftest import run_once


def test_fig11_12_hostlo_memcached(benchmark, config):
    result = run_once(benchmark, "fig11_12", config)
    hostlo = result.value("latency_us", mode="hostlo")
    samenode = result.value("latency_us", mode="samenode")
    nat = result.value("latency_us", mode="nat_cross")
    # Paper: hostlo "unexpectedly reaches the levels of SameNode" and
    # beats NAT/Overlay comfortably.
    assert hostlo < 1.6 * samenode
    assert hostlo < nat
    hostlo_cv = result.value("latency_cv", mode="hostlo")
    nat_cv = result.value("latency_cv", mode="nat_cross")
    assert hostlo_cv < nat_cv  # stable latencies

"""Regenerates fig 5: BrFusion macro-benchmarks (Kafka, NGINX, Memcached)."""

from conftest import run_once


def test_fig05_brfusion_macro(benchmark, config):
    result = run_once(benchmark, "fig05", config)
    # Paper: BrFusion improves Kafka latency ~11.8 % over NAT and NGINX
    # latency ~30.1 % over NAT.
    for app in ("kafka", "nginx"):
        brf = result.value("latency_us", app=app, mode="brfusion")
        nat = result.value("latency_us", app=app, mode="nat")
        assert brf < nat

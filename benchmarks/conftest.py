"""Shared fixtures for the per-figure benchmark harness.

Every module regenerates one of the paper's tables/figures; run with::

    pytest benchmarks/ --benchmark-only

Each benchmark prints the regenerated rows (use ``-s`` to see them) and
asserts the figure's headline shape.
"""

import pytest

from repro.harness import ExperimentConfig

# Scaled for benchmark runs: big enough to keep ratios stable, small
# enough that the whole harness regenerates in a couple of minutes.
BENCH_CONFIG = ExperimentConfig(
    stream_duration_s=0.008,
    rr_transactions=120,
    message_sizes=(1024, 1280),
    macro_duration_s=0.01,
    memtier_threads=2,
    memtier_connections_per_thread=15,
    wrk2_rate_per_s=5000.0,
    wrk2_connections=50,
    boot_runs=40,
    trace_users=492,
)


@pytest.fixture(scope="session")
def config():
    return BENCH_CONFIG


def run_once(benchmark, experiment, config):
    """Run *experiment* exactly once under pytest-benchmark timing."""
    from repro.harness import run_experiment

    result = benchmark.pedantic(
        run_experiment, args=(experiment, config), iterations=1, rounds=1
    )
    print()
    print(result.render())
    return result

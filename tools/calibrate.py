"""Calibration harness: print emergent ratios vs the paper's targets.

Run:  python tools/calibrate.py
"""

import sys

from repro.core import DeploymentMode, build_scenario
from repro.core.testbed import default_testbed
from repro.workloads import NetperfTcpStream, NetperfUdpRR


def run_mode(mode, msg, *, duration=0.03, transactions=400, seed=5):
    tb = default_testbed(seed=seed, vms=2)
    scen = build_scenario(tb, mode)
    thr = NetperfTcpStream(window=128).run(scen, msg, duration_s=duration)
    tb2 = default_testbed(seed=seed, vms=2)
    scen2 = build_scenario(tb2, mode)
    lat = NetperfUdpRR().run(scen2, msg, transactions=transactions)
    return thr.throughput_mbps, lat.latency.mean * 1e6, lat.latency.cv


def main():
    msg = int(sys.argv[1]) if len(sys.argv) > 1 else 1280
    print(f"== client->server @{msg}B ==")
    rows = {}
    for mode in (DeploymentMode.NOCONT, DeploymentMode.NAT, DeploymentMode.BRFUSION):
        rows[mode.value] = run_mode(mode, msg)
        t, l, cv = rows[mode.value]
        print(f"{mode.value:10s} thr={t:9.1f} Mbps  lat={l:8.1f} us  cv={cv:.2f}")
    print(f"NAT/NoCont thr   = {rows['nat'][0]/rows['nocont'][0]:.3f}   (paper ~0.32-0.48)")
    print(f"BrF/NAT thr      = {rows['brfusion'][0]/rows['nat'][0]:.3f} (paper ~2.1)")
    print(f"BrF/NoCont thr   = {rows['brfusion'][0]/rows['nocont'][0]:.3f} (paper >0.965)")
    print(f"NAT/NoCont lat   = {rows['nat'][1]/rows['nocont'][1]:.3f}  (paper ~1.31)")
    print(f"BrF/NAT lat      = {rows['brfusion'][1]/rows['nat'][1]:.3f} (paper ~0.816)")

    msg2 = 1024
    print(f"\n== intra-pod @{msg2}B ==")
    rows = {}
    for mode in (DeploymentMode.SAMENODE, DeploymentMode.HOSTLO,
                 DeploymentMode.OVERLAY, DeploymentMode.NAT_CROSS):
        rows[mode.value] = run_mode(mode, msg2)
        t, l, cv = rows[mode.value]
        print(f"{mode.value:10s} thr={t:9.1f} Mbps  lat={l:8.1f} us  cv={cv:.2f}")
    print(f"Same/Hostlo thr  = {rows['samenode'][0]/rows['hostlo'][0]:.3f} (paper ~5.3)")
    print(f"Hostlo/NATx thr  = {rows['hostlo'][0]/rows['nat_cross'][0]:.3f} (paper ~1.18)")
    print(f"Ovl/Hostlo thr   = {rows['overlay'][0]/rows['hostlo'][0]:.3f} (paper ~1.37)")
    print(f"Hostlo/Same lat  = {rows['hostlo'][1]/rows['samenode'][1]:.3f} (paper ~2.0)")
    print(f"NATx/Hostlo lat  = {rows['nat_cross'][1]/rows['hostlo'][1]:.3f} (paper ~7.9)")
    print(f"Ovl/Hostlo lat   = {rows['overlay'][1]/rows['hostlo'][1]:.3f} (paper ~9.8)")


if __name__ == "__main__":
    main()

"""The top-level package surface stays importable and coherent."""

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_thirty_second_workflow():
    """The README's 'from Python' snippet, end to end."""
    tb = repro.default_testbed(vms=2)
    scenario = repro.build_scenario(tb, repro.DeploymentMode.BRFUSION)
    from repro.workloads import NetperfTcpStream

    result = NetperfTcpStream(window=16).run(scenario, 1280, duration_s=0.005)
    assert result.throughput_mbps > 100


def test_netstack_exports_resolve():
    import repro.netstack

    for name in repro.netstack.__all__:
        assert getattr(repro.netstack, name) is not None
    assert "offloaded_nsm" in repro.netstack.backend_names()


def test_net_exports_nsm_devices():
    import repro.net

    for name in repro.net.__all__:
        assert getattr(repro.net, name) is not None
    assert repro.net.NsmPort and repro.net.NsmHostStack


def test_service_exports_resolve():
    import repro.service

    for name in repro.service.__all__:
        assert getattr(repro.service, name) is not None


def test_traces_streaming_exports_resolve():
    import repro.traces

    for name in ("iter_users", "iter_pods", "stream_statistics",
                 "BoundedWindow"):
        assert getattr(repro.traces, name) is not None


def test_subpackages_import():
    import repro.analysis
    import repro.containers
    import repro.core
    import repro.costsim
    import repro.faults
    import repro.harness
    import repro.health
    import repro.metrics
    import repro.net
    import repro.netstack
    import repro.obs
    import repro.orchestrator
    import repro.service
    import repro.sim
    import repro.traces
    import repro.virt
    import repro.workloads

    assert repro.net.__doc__ and repro.sim.__doc__

"""Shape test: traced per-stage cycles agree with the cost model.

The tracer annotates every ``datapath.stage`` span with the cycles it
charged; those must match what :mod:`repro.net.costs` says each stage
of the resolved path should cost — the trace is a faithful record of
the model, not an approximation of it.  BrFusion's whole point (§3) is
a shorter datapath than NAT, so the traced stage list must show it.
"""

import pytest

from repro import obs
from repro.core import DeploymentMode, build_scenario
from repro.core.testbed import default_testbed

NBYTES = 1280


def traced_stage_spans(mode, nbytes=NBYTES):
    """Run one forward transfer under *mode*; return (path, stage spans)."""
    with obs.capture() as (tracer, _metrics):
        tb = default_testbed(seed=11, vms=2)
        scenario = build_scenario(tb, mode)
        forward, _reverse = scenario.paths()
        tb.env.run(until=tb.env.process(tb.engine.transfer(forward, nbytes)))
        return tb, forward, tracer.spans_in("datapath.stage")


def expected_cycles(tb, path, nbytes=NBYTES):
    """Per-stage cycles straight from the cost model (unbatched)."""
    segments = path.segments_for(nbytes)
    out = []
    for st in path.stages:
        cost = tb.engine.cost_model[st.stage]
        packets = 1 if cost.per_message else segments
        out.append(cost.cycles(packets, nbytes, batched=False) * st.multiplier)
    return out


@pytest.mark.parametrize(
    "mode", [DeploymentMode.NAT, DeploymentMode.BRFUSION]
)
class TestTracedCyclesMatchCostModel:
    def test_one_span_per_stage_in_order(self, mode):
        _tb, path, spans = traced_stage_spans(mode)
        assert [s.name for s in spans] == [st.stage for st in path.stages]
        assert [s.attrs["domain"] for s in spans] == [
            st.domain for st in path.stages
        ]

    def test_per_stage_cycles_match(self, mode):
        tb, path, spans = traced_stage_spans(mode)
        traced = [s.attrs["cycles"] for s in spans]
        assert traced == pytest.approx(expected_cycles(tb, path))

    def test_total_cycles_match(self, mode):
        tb, path, spans = traced_stage_spans(mode)
        assert sum(s.attrs["cycles"] for s in spans) == pytest.approx(
            sum(expected_cycles(tb, path))
        )

    def test_accounts_match_cost_model(self, mode):
        tb, path, spans = traced_stage_spans(mode)
        assert [s.attrs["account"] for s in spans] == [
            tb.engine.cost_model[st.stage].account for st in path.stages
        ]


class TestBrFusionShorterPath:
    def test_brfusion_traces_fewer_stages_than_nat(self):
        _, nat_path, nat_spans = traced_stage_spans(DeploymentMode.NAT)
        _, br_path, br_spans = traced_stage_spans(DeploymentMode.BRFUSION)
        assert len(br_spans) < len(nat_spans)
        # and cheaper in total cycles, matching fig 4's ordering
        assert sum(s.attrs["cycles"] for s in br_spans) < sum(
            s.attrs["cycles"] for s in nat_spans
        )

    def test_nat_only_stages_absent_from_brfusion(self):
        _, _, nat_spans = traced_stage_spans(DeploymentMode.NAT)
        _, _, br_spans = traced_stage_spans(DeploymentMode.BRFUSION)
        nat_stages = {s.name for s in nat_spans}
        br_stages = {s.name for s in br_spans}
        # The guest-side NAT machinery is exactly what BrFusion removes.
        assert "netfilter_nat" in nat_stages
        assert "netfilter_nat" not in br_stages


class TestTransferParentSpan:
    def test_stages_nest_under_the_transfer(self):
        with obs.capture() as (tracer, _):
            tb = default_testbed(seed=11, vms=2)
            scenario = build_scenario(tb, DeploymentMode.NAT)
            forward, _reverse = scenario.paths()
            tb.env.run(
                until=tb.env.process(tb.engine.transfer(forward, NBYTES))
            )
            parents = tracer.spans_in("datapath.transfer")
            assert len(parents) == 1
            parent = parents[0]
            assert parent.attrs["nbytes"] == NBYTES
            assert parent.attrs["stages"] == len(forward.stages)
            for stage in tracer.spans_in("datapath.stage"):
                assert stage.parent == parent.sid
            # the transfer span covers all of its stages
            assert parent.end == tb.env.now

"""Property fuzzing: random pods, random modes — the invariants hold.

For arbitrary (but feasible) deployments, the analytic resolver and the
frame-level data plane must agree, paths must terminate, and BrFusion's
structural guarantee (no guest NAT/bridge stages) must hold for every
pod shape.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DeploymentMode, build_scenario
from repro.core.testbed import Testbed
from repro.net import resolve_path
from repro.net.forwarding import ForwardingEngine
from repro.orchestrator.pod import ContainerSpec, PodSpec

MODES = st.sampled_from([
    DeploymentMode.NAT,
    DeploymentMode.BRFUSION,
    DeploymentMode.SAMENODE,
    DeploymentMode.HOSTLO,
    DeploymentMode.OVERLAY,
])

PORTS = st.integers(min_value=1024, max_value=60000)


@settings(max_examples=30, deadline=None)
@given(mode=MODES, port=PORTS, seed=st.integers(min_value=0, max_value=2**31))
def test_scenarios_resolve_and_frames_agree(mode, port, seed):
    tb = Testbed(seed=seed)
    tb.add_vm("vm0")
    tb.add_vm("vm1")
    scenario = build_scenario(tb, mode, port=port)
    path = resolve_path(scenario.src_ns, scenario.dst_addr, scenario.dst_port)
    assert path.stages
    assert path.segment_payload > 0
    delivery = ForwardingEngine().send(
        scenario.src_ns, scenario.dst_addr, scenario.dst_port
    )
    assert delivery.delivered, delivery.hops
    assert delivery.namespace == scenario.dst_ns.name


@settings(max_examples=25, deadline=None)
@given(
    n_containers=st.integers(min_value=1, max_value=4),
    cpu=st.floats(min_value=0.25, max_value=1.2),   # ≤ 4×1.2 < 5 vCPUs
    memory=st.floats(min_value=0.25, max_value=0.9),  # ≤ 4×0.9 < 4 GB
    port=PORTS,
)
def test_brfusion_pods_never_gain_guest_nat(n_containers, cpu, memory, port):
    tb = Testbed(seed=7)
    tb.add_vm("vm0")
    spec = PodSpec(
        "fuzz",
        containers=tuple(
            ContainerSpec(
                f"c{i}", "alpine", cpu=cpu, memory_gb=memory,
                publish=((("tcp", port, port),) if i == 0 else ()),
            )
            for i in range(n_containers)
        ),
    )
    dep = tb.deploy(spec, network="brfusion")
    addr, ext_port = dep.external_endpoints["c0"]
    path = resolve_path(tb.client_ns, addr, ext_port)
    assert path.count("netfilter_nat") == 0
    assert path.count("bridge_fwd") == 1  # the host bridge only
    assert path.count("veth_xmit") == 1  # the client's leg only


@settings(max_examples=20, deadline=None)
@given(
    cpu_a=st.floats(min_value=2.6, max_value=4.5),
    cpu_b=st.floats(min_value=2.6, max_value=4.5),
    port=PORTS,
)
def test_hostlo_split_pods_always_reflect(cpu_a, cpu_b, port):
    tb = Testbed(seed=9)
    tb.add_vm("vm0")
    tb.add_vm("vm1")
    spec = PodSpec(
        "fuzz",
        containers=(
            ContainerSpec("a", "alpine", cpu=cpu_a, memory_gb=1),
            ContainerSpec("b", "alpine", cpu=cpu_b, memory_gb=1),
        ),
    )
    dep = tb.deploy(spec, network="hostlo", allow_split=True)
    assert dep.is_split  # cpu_a + cpu_b > 5 always here
    path = resolve_path(dep.namespace_of("a"), dep.intra_address("b"), port)
    assert path.count("hostlo_reflect") == 1
    assert path.count("bridge_fwd") == 0
    reflect = next(s for s in path.stages if s.stage == "hostlo_reflect")
    assert reflect.multiplier == 2.0

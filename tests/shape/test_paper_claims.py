"""Shape tests: the paper's headline claims, asserted with bands.

These are the reproduction's scientific regression tests: each asserts
that a ratio the paper reports emerges from the simulated system within
a tolerance band.  Experiments run once per module on a reduced (but
not tiny) scale.
"""

import pytest

from repro.harness import ExperimentConfig, run_experiment

CONFIG = ExperimentConfig(
    stream_duration_s=0.012,
    rr_transactions=300,
    message_sizes=(1024, 1280, 16384),
    macro_duration_s=0.015,
    memtier_threads=2,
    memtier_connections_per_thread=25,
    wrk2_rate_per_s=6000.0,
    wrk2_connections=60,
    boot_runs=60,
    trace_users=492,
)


@pytest.fixture(scope="module")
def fig04():
    return run_experiment("fig04", CONFIG)


@pytest.fixture(scope="module")
def fig10():
    return run_experiment("fig10", CONFIG)


@pytest.fixture(scope="module")
def fig05():
    return run_experiment("fig05", CONFIG)


def _v(result, column, **filters):
    return float(result.value(column, **filters))


class TestFig2And4BrFusionMicro:
    """Fig 2 (−68 % thr, +31 % lat) and fig 4 (2.1×, ≤3.5 %, 18.4 %)."""

    def test_nat_throughput_degradation(self, fig04):
        nat = _v(fig04, "throughput_mbps", mode="nat", size_B=1280)
        nocont = _v(fig04, "throughput_mbps", mode="nocont", size_B=1280)
        assert 0.25 <= nat / nocont <= 0.48  # paper: 0.32 (fig2) – 0.48 (fig4)

    def test_nat_latency_increase(self, fig04):
        nat = _v(fig04, "latency_us", mode="nat", size_B=1280)
        nocont = _v(fig04, "latency_us", mode="nocont", size_B=1280)
        assert 1.18 <= nat / nocont <= 1.45  # paper ≈ 1.31

    def test_brfusion_matches_nocont_throughput(self, fig04):
        brf = _v(fig04, "throughput_mbps", mode="brfusion", size_B=1280)
        nocont = _v(fig04, "throughput_mbps", mode="nocont", size_B=1280)
        assert abs(brf / nocont - 1.0) <= 0.035  # paper: within 3.5 %

    def test_brfusion_throughput_multiple_of_nat(self, fig04):
        brf = _v(fig04, "throughput_mbps", mode="brfusion", size_B=1280)
        nat = _v(fig04, "throughput_mbps", mode="nat", size_B=1280)
        # paper text: 2.1×; paper fig 2 (−68 %) implies ≈ 3.1×.
        assert 1.9 <= brf / nat <= 3.6

    def test_brfusion_latency_below_nat(self, fig04):
        brf = _v(fig04, "latency_us", mode="brfusion", size_B=1280)
        nat = _v(fig04, "latency_us", mode="nat", size_B=1280)
        assert 0.65 <= brf / nat <= 0.92  # paper ≈ 0.816

    def test_brfusion_scales_with_message_size_like_nocont(self, fig04):
        for mode in ("brfusion", "nocont"):
            small = _v(fig04, "throughput_mbps", mode=mode, size_B=1024)
            big = _v(fig04, "throughput_mbps", mode=mode, size_B=16384)
            assert big > 1.5 * small
        # NAT scales more slowly (stagnation past the MTU).
        nat_small = _v(fig04, "throughput_mbps", mode="nat", size_B=1024)
        nat_big = _v(fig04, "throughput_mbps", mode="nat", size_B=16384)
        brf_small = _v(fig04, "throughput_mbps", mode="brfusion", size_B=1024)
        brf_big = _v(fig04, "throughput_mbps", mode="brfusion", size_B=16384)
        assert nat_big / nat_small < brf_big / brf_small

    def test_nat_latency_noisier(self, fig04):
        nat_cv = _v(fig04, "latency_cv", mode="nat", size_B=1280)
        nocont_cv = _v(fig04, "latency_cv", mode="nocont", size_B=1280)
        assert nat_cv > nocont_cv


class TestFig10HostloMicro:
    """Fig 10: the four intra-pod configurations at 1024 B."""

    def test_hostlo_beats_nat_throughput(self, fig10):
        hostlo = _v(fig10, "throughput_mbps", mode="hostlo", size_B=1024)
        nat = _v(fig10, "throughput_mbps", mode="nat_cross", size_B=1024)
        assert 1.02 <= hostlo / nat <= 1.40  # paper ≈ 1.179

    def test_overlay_beats_hostlo_throughput(self, fig10):
        hostlo = _v(fig10, "throughput_mbps", mode="hostlo", size_B=1024)
        overlay = _v(fig10, "throughput_mbps", mode="overlay", size_B=1024)
        assert 0.60 <= hostlo / overlay <= 0.98  # paper ≈ 0.73

    def test_samenode_throughput_multiple(self, fig10):
        same = _v(fig10, "throughput_mbps", mode="samenode", size_B=1024)
        hostlo = _v(fig10, "throughput_mbps", mode="hostlo", size_B=1024)
        assert 4.0 <= same / hostlo <= 7.0  # paper ≈ 5.3

    def test_hostlo_latency_far_below_nat_and_overlay(self, fig10):
        hostlo = _v(fig10, "latency_us", mode="hostlo", size_B=1024)
        nat = _v(fig10, "latency_us", mode="nat_cross", size_B=1024)
        overlay = _v(fig10, "latency_us", mode="overlay", size_B=1024)
        assert 1 - hostlo / nat >= 0.75  # paper: 87.3 % lower
        assert 1 - hostlo / overlay >= 0.80  # paper: 89.8 % lower

    def test_hostlo_latency_about_twice_samenode(self, fig10):
        hostlo = _v(fig10, "latency_us", mode="hostlo", size_B=1024)
        same = _v(fig10, "latency_us", mode="samenode", size_B=1024)
        assert 1.6 <= hostlo / same <= 2.6  # paper ≈ 2×

    def test_hostlo_latency_stable_across_sizes(self, fig10):
        lats = [
            _v(fig10, "latency_us", mode="hostlo", size_B=size)
            for size in (1024, 1280)
        ]
        assert max(lats) / min(lats) < 1.5
        cv = _v(fig10, "latency_cv", mode="hostlo", size_B=1024)
        nat_cv = _v(fig10, "latency_cv", mode="nat_cross", size_B=1024)
        assert cv < nat_cv  # stable vs erratic (paper §5.3.2)

    def test_worst_case_bands(self, fig10):
        def ratios(kind):
            out = {}
            for size in CONFIG.message_sizes:
                same = _v(fig10, kind, mode="samenode", size_B=size)
                hlo = _v(fig10, kind, mode="hostlo", size_B=size)
                out[size] = same / hlo if kind == "throughput_mbps" else hlo / same
            return out

        thr = ratios("throughput_mbps")
        lat = ratios("latency_us")
        # paper: worst case 6.1× lower throughput, 2.1× higher latency.
        # Sub-MTU sizes reproduce the band; at 16 KiB our hostlo
        # degrades harder than the paper's (the reflect copy is
        # per-byte on one kernel thread while the loopback rides a
        # 64 KiB MTU) — asserted only as monotone worsening and
        # documented in EXPERIMENTS.md.
        small_thr = [r for size, r in thr.items() if size <= 2048]
        small_lat = [r for size, r in lat.items() if size <= 2048]
        assert 4.0 <= max(small_thr) <= 9.0
        assert 1.7 <= max(small_lat) <= 2.8
        assert thr[16384] > max(small_thr)


class TestFig5Macros:
    def test_kafka_brfusion_beats_nat(self, fig05):
        brf = _v(fig05, "latency_us", app="kafka", mode="brfusion")
        nat = _v(fig05, "latency_us", app="kafka", mode="nat")
        assert 0.06 <= 1 - brf / nat <= 0.20  # paper ≈ 11.8 %

    def test_kafka_brfusion_above_nocont(self, fig05):
        brf = _v(fig05, "latency_us", app="kafka", mode="brfusion")
        nocont = _v(fig05, "latency_us", app="kafka", mode="nocont")
        assert 0.05 <= brf / nocont - 1 <= 0.25  # paper ≈ 13.1 %

    def test_nginx_brfusion_beats_nat(self, fig05):
        brf = _v(fig05, "latency_us", app="nginx", mode="brfusion")
        nat = _v(fig05, "latency_us", app="nginx", mode="nat")
        assert brf < nat  # paper: 30.1 % better

    def test_nginx_container_overhead_dominates(self, fig05):
        brf = _v(fig05, "latency_us", app="nginx", mode="brfusion")
        nocont = _v(fig05, "latency_us", app="nginx", mode="nocont")
        assert brf / nocont - 1 >= 0.20  # paper: +120 % (software, not net)

    def test_nginx_container_variance(self, fig05):
        nat_cv = _v(fig05, "latency_cv", app="nginx", mode="nat")
        brf_cv = _v(fig05, "latency_cv", app="nginx", mode="brfusion")
        nocont_cv = _v(fig05, "latency_cv", app="nginx", mode="nocont")
        assert nat_cv > nocont_cv and brf_cv > nocont_cv


class TestFig6CpuBreakdown:
    def test_brfusion_cuts_guest_softirq(self):
        result = run_experiment("fig06", CONFIG)
        nat_soft = next(
            r["soft_cores"] for r in result.rows
            if r["mode"] == "nat" and r["entity"].startswith("vm:")
        )
        brf_soft = next(
            r["soft_cores"] for r in result.rows
            if r["mode"] == "brfusion" and r["entity"].startswith("vm:")
        )
        reduction = 1 - brf_soft / nat_soft
        assert 0.40 <= reduction <= 0.95  # paper ≈ 67 %


class TestFig8BootTime:
    def test_brfusion_wins_most_quantiles(self):
        result = run_experiment("fig08", CONFIG)
        quantile_rows = [r for r in result.rows if r["quantile"] != "mean"]
        wins = sum(r["brfusion_better"] for r in quantile_rows)
        assert wins >= len(quantile_rows) * 0.5  # paper ≈ 75 %

    def test_means_comparable(self):
        result = run_experiment("fig08", CONFIG)
        nat = result.value("nat_ms", quantile="mean")
        brf = result.value("brfusion_ms", quantile="mean")
        assert 0.7 <= brf / nat <= 1.15  # "BrFusion incurs no overhead"


class TestFig11To13Macros:
    def test_memcached_hostlo_reaches_samenode(self):
        result = run_experiment("fig11_12", CONFIG)
        hostlo = result.value("latency_us", mode="hostlo")
        same = result.value("latency_us", mode="samenode")
        assert hostlo / same <= 1.5  # paper: "reaches the levels"
        hostlo_rate = result.value("rate_per_s", mode="hostlo")
        nat_rate = result.value("rate_per_s", mode="nat_cross")
        assert hostlo_rate > nat_rate

    def test_nginx_hostlo_between_samenode_and_nat(self):
        result = run_experiment("fig13", CONFIG)
        hostlo = result.value("latency_us", mode="hostlo")
        nat = result.value("latency_us", mode="nat_cross")
        overlay = result.value("latency_us", mode="overlay")
        assert hostlo < nat and hostlo < overlay


class TestFig14And15Cpu:
    def test_nginx_cpu_overheads(self):
        result = run_experiment("fig15", CONFIG)

        def total(mode):
            return sum(
                r["total_cores"] for r in result.rows
                if r["mode"] == mode and r["entity"].startswith("vm:")
            )

        increase = total("hostlo") / total("samenode") - 1
        assert 0.0 <= increase <= 0.50  # paper ≈ +17.1 %

    def test_host_kernel_time_present_for_hostlo(self):
        result = run_experiment("fig14", CONFIG)
        hostlo_sys = result.value("sys_cores", mode="hostlo", entity="host")
        assert hostlo_sys > 0.2  # vhost + hostlo worker cores

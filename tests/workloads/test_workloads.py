"""Tests for the benchmark workloads."""

import pytest

from repro.core import DeploymentMode, build_scenario
from repro.core.testbed import default_testbed
from repro.errors import ConfigurationError
from repro.workloads import (
    KafkaProducerPerf,
    MemtierBenchmark,
    NetperfTcpStream,
    NetperfUdpRR,
    Wrk2Benchmark,
)


def scenario_for(mode, seed=3, image="netperf", port=12865):
    tb = default_testbed(seed=seed, vms=2)
    return build_scenario(tb, mode, image=image, port=port)


class TestTcpStream:
    def test_produces_throughput(self):
        scen = scenario_for(DeploymentMode.NOCONT)
        result = NetperfTcpStream(window=4).run(scen, 1280, duration_s=0.02)
        assert result.messages > 10
        assert result.throughput_mbps > 1
        assert result.bytes_transferred == result.messages * 1280

    def test_nat_slower_than_nocont(self):
        nocont = NetperfTcpStream(window=4).run(
            scenario_for(DeploymentMode.NOCONT), 1280, duration_s=0.02
        )
        nat = NetperfTcpStream(window=4).run(
            scenario_for(DeploymentMode.NAT), 1280, duration_s=0.02
        )
        assert nat.throughput_bps < nocont.throughput_bps

    def test_throughput_grows_with_message_size(self):
        small = NetperfTcpStream(window=4).run(
            scenario_for(DeploymentMode.NOCONT), 64, duration_s=0.02
        )
        big = NetperfTcpStream(window=4).run(
            scenario_for(DeploymentMode.NOCONT), 8192, duration_s=0.02
        )
        assert big.throughput_bps > small.throughput_bps

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NetperfTcpStream(window=0)
        scen = scenario_for(DeploymentMode.NOCONT)
        with pytest.raises(ConfigurationError):
            NetperfTcpStream().run(scen, 0)


class TestUdpRR:
    def test_produces_latency_stats(self):
        scen = scenario_for(DeploymentMode.NOCONT)
        result = NetperfUdpRR().run(scen, 1280, transactions=50)
        stats = result.latency
        assert stats.count == 50
        assert 0 < stats.mean < 0.01  # sub-10ms RTTs
        assert stats.p99 >= stats.p50

    def test_nat_latency_higher(self):
        nocont = NetperfUdpRR().run(
            scenario_for(DeploymentMode.NOCONT), 1280, transactions=60
        )
        nat = NetperfUdpRR().run(
            scenario_for(DeploymentMode.NAT), 1280, transactions=60
        )
        assert nat.latency.mean > nocont.latency.mean

    def test_deterministic_given_seed(self):
        a = NetperfUdpRR().run(
            scenario_for(DeploymentMode.NAT, seed=9), 256, transactions=20
        )
        b = NetperfUdpRR().run(
            scenario_for(DeploymentMode.NAT, seed=9), 256, transactions=20
        )
        assert a.latency_samples == b.latency_samples


class TestMemtier:
    def test_runs_closed_loop(self):
        scen = scenario_for(DeploymentMode.SAMENODE, image="memcached",
                            port=11211)
        bench = MemtierBenchmark(threads=2, connections_per_thread=10)
        result = bench.run(scen, duration_s=0.01)
        assert result.messages > 20
        assert result.latency.mean > 0

    def test_ratio_validation(self):
        with pytest.raises(ValueError):
            MemtierBenchmark(set_get_ratio=2.0)

    def test_hostlo_beats_nat_cross_latency(self):
        hostlo = MemtierBenchmark(threads=1, connections_per_thread=5).run(
            scenario_for(DeploymentMode.HOSTLO, image="memcached", port=11211),
            duration_s=0.01,
        )
        natx = MemtierBenchmark(threads=1, connections_per_thread=5).run(
            scenario_for(DeploymentMode.NAT_CROSS, image="memcached",
                         port=11211),
            duration_s=0.01,
        )
        assert hostlo.latency.mean < natx.latency.mean


class TestWrk2:
    def test_open_loop_rate(self):
        scen = scenario_for(DeploymentMode.NOCONT, image="nginx", port=80)
        bench = Wrk2Benchmark(connections=20, rate_per_s=2000)
        result = bench.run(scen, duration_s=0.05)
        assert result.messages == 100  # rate × duration, all completed
        assert result.latency.count == 100

    def test_container_noise_heavier_than_native(self):
        native = Wrk2Benchmark(connections=20, rate_per_s=2000).run(
            scenario_for(DeploymentMode.NOCONT, image="nginx", port=80),
            duration_s=0.05,
        )
        nested = Wrk2Benchmark(connections=20, rate_per_s=2000).run(
            scenario_for(DeploymentMode.NAT, image="nginx", port=80),
            duration_s=0.05,
        )
        assert nested.latency.cv > native.latency.cv


class TestKafka:
    def test_batching_math(self):
        bench = KafkaProducerPerf()
        assert bench.messages_per_batch == 81
        with pytest.raises(ValueError):
            KafkaProducerPerf(message_bytes=9000, batch_bytes=8192)

    def test_latency_in_millisecond_range(self):
        scen = scenario_for(DeploymentMode.NAT, image="kafka", port=9092)
        result = KafkaProducerPerf().run(scen, duration_s=0.05)
        assert result.messages > 1000
        assert 1e-4 < result.latency.mean < 0.1


class TestTcpRRAndCRR:
    def test_tcp_rr_slower_than_udp_rr(self):
        from repro.workloads import NetperfTcpRR

        udp = NetperfUdpRR().run(
            scenario_for(DeploymentMode.NOCONT, seed=4), 1024, transactions=40
        )
        tcp = NetperfTcpRR().run(
            scenario_for(DeploymentMode.NOCONT, seed=4), 1024, transactions=40
        )
        assert tcp.latency.mean > udp.latency.mean  # per-transaction ACK leg

    def test_crr_pays_the_handshake(self):
        from repro.workloads import NetperfTcpCRR, NetperfTcpRR

        rr = NetperfTcpRR().run(
            scenario_for(DeploymentMode.NOCONT, seed=4), 1024, transactions=40
        )
        crr = NetperfTcpCRR().run(
            scenario_for(DeploymentMode.NOCONT, seed=4), 1024, transactions=40
        )
        # Connect+close adds roughly two extra path traversals.
        assert crr.latency.mean > 1.4 * rr.latency.mean

    def test_nat_pays_its_penalty_under_churn_too(self):
        from repro.workloads import NetperfTcpCRR

        nat = NetperfTcpCRR().run(
            scenario_for(DeploymentMode.NAT, seed=4), 1024, transactions=40
        )
        nocont = NetperfTcpCRR().run(
            scenario_for(DeploymentMode.NOCONT, seed=4), 1024, transactions=40
        )
        # Every handshake segment traverses the duplicated layer.
        assert nat.latency.mean > 1.1 * nocont.latency.mean

"""Retry/backoff math and fallback routing."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import RecoveryPolicy, RetryPolicy
from repro.sim import RngRegistry


class TestRetryPolicy:
    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(base_delay_s=1e-3, multiplier=2.0,
                             jitter=0.0, max_delay_s=3e-3)
        assert policy.backoff_s(1) == pytest.approx(1e-3)
        assert policy.backoff_s(2) == pytest.approx(2e-3)
        assert policy.backoff_s(3) == pytest.approx(3e-3)  # capped
        assert policy.backoff_s(9) == pytest.approx(3e-3)

    def test_jitter_stays_in_band_and_is_deterministic(self):
        policy = RetryPolicy(base_delay_s=1e-3, jitter=0.25)
        rng_a = RngRegistry(5).stream("recovery:backoff")
        rng_b = RngRegistry(5).stream("recovery:backoff")
        delays_a = [policy.backoff_s(1, rng_a) for _ in range(64)]
        delays_b = [policy.backoff_s(1, rng_b) for _ in range(64)]
        assert delays_a == delays_b
        assert all(0.75e-3 <= d <= 1.25e-3 for d in delays_a)
        assert len(set(delays_a)) > 1  # jitter actually jitters

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_delay_s=-1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy().backoff_s(0)


class TestRecoveryPolicy:
    def test_default_falls_brfusion_back_to_nat(self):
        policy = RecoveryPolicy()
        assert policy.fallback_for("brfusion") == "nat"
        assert policy.fallback_for("brfusion-tenant-a") == "nat"
        assert policy.fallback_for("hostlo") is None
        assert policy.fallback_for("nat") is None

    def test_empty_mapping_disables_fallback(self):
        policy = RecoveryPolicy(fallbacks=())
        assert policy.fallback_for("brfusion") is None

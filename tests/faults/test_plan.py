"""Unit tests for the declarative fault plan."""

import pytest

from repro.errors import FaultInjectionError
from repro.faults import FAULT_KINDS, FaultPlan, FaultSpec
from repro.faults.plan import SCHEDULED_KINDS


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultSpec(kind="disk.melt")

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultSpec(kind="qmp.error", probability=1.5)
        with pytest.raises(FaultInjectionError):
            FaultSpec(kind="qmp.error", probability=-0.1)

    def test_scheduled_kinds_need_at(self):
        for kind in SCHEDULED_KINDS:
            with pytest.raises(FaultInjectionError):
                FaultSpec(kind=kind)
            FaultSpec(kind=kind, at=0.01)  # fine with a schedule

    def test_window_matching(self):
        spec = FaultSpec(kind="frame.drop", after=1.0, until=2.0)
        assert not spec.in_window(0.5)
        assert spec.in_window(1.5)
        assert not spec.in_window(2.5)
        # A site without a clock only matches windowless specs.
        assert not spec.in_window(None)
        assert FaultSpec(kind="frame.drop").in_window(None)

    def test_args_lookup_with_default(self):
        spec = FaultSpec(kind="qmp.latency", args=(("multiplier", 25.0),))
        assert spec.arg("multiplier") == 25.0
        assert spec.arg("missing", 7) == 7

    def test_all_kinds_are_known(self):
        for kind in FAULT_KINDS:
            at = 0.0 if kind in SCHEDULED_KINDS else None
            assert FaultSpec(kind=kind, at=at).kind == kind


class TestFaultPlan:
    def plan(self):
        return FaultPlan(
            specs=(
                FaultSpec(kind="hotplug.refuse", target="vm*",
                          probability=0.5),
                FaultSpec(kind="vm.crash", target="vm1", at=0.01,
                          duration=0.02),
                FaultSpec(kind="agent.stall", max_hits=3),
            ),
            description="test plan",
        )

    def test_scheduled_inline_partition(self):
        plan = self.plan()
        assert [s.kind for s in plan.scheduled] == ["vm.crash"]
        assert [s.kind for s in plan.inline] == ["hotplug.refuse",
                                                 "agent.stall"]

    def test_of_kind(self):
        plan = self.plan()
        assert len(plan.of_kind("vm.crash")) == 1
        assert plan.of_kind("qmp.error") == ()

    def test_json_roundtrip(self):
        plan = self.plan()
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(FaultInjectionError):
            FaultSpec.from_dict({"kind": "qmp.error", "color": "red"})

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(self.plan().to_json())
        assert FaultPlan.load(path) == self.plan()


class TestServiceFaultKinds:
    """The trace-service chaos kinds ride the same plan grammar."""

    def test_service_kinds_are_known_and_inline(self):
        assert "service.crash" in FAULT_KINDS
        assert "service.disk_full" in FAULT_KINDS
        # Inline, not scheduled: the service has no simulated clock —
        # its sites query at dispatch/append time.
        assert "service.crash" not in SCHEDULED_KINDS
        assert "service.disk_full" not in SCHEDULED_KINDS

    def test_service_plan_roundtrips_through_json(self):
        plan = FaultPlan(specs=(
            FaultSpec(kind="service.crash", target="service-shard-1",
                      max_hits=1),
            FaultSpec(kind="service.disk_full", target="seg-*",
                      probability=0.25),
        ), description="durable-service chaos")
        assert FaultPlan.from_json(plan.to_json()) == plan

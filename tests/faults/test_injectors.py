"""The injector runtime, the injection sites, and the ChaosController."""

import pytest

from repro import faults, obs
from repro.errors import HotplugError
from repro.faults import ChaosController, FaultInjector, FaultPlan, FaultSpec
from repro.net.devices import PhysicalNic
from repro.net.links import PhysicalLink
from repro.orchestrator import Orchestrator
from repro.orchestrator.pod import simple_pod
from repro.sim import Environment, RngRegistry
from repro.virt import PhysicalHost, Vmm


def injector_for(*specs, seed=7, now_fn=None):
    rng = RngRegistry(seed)
    return FaultInjector(FaultPlan(specs=specs), rng.stream("faults"),
                         now_fn=now_fn)


class TestFaultInjector:
    def test_target_glob_matching(self):
        inj = injector_for(FaultSpec(kind="hotplug.refuse", target="vm[01]"))
        assert inj.fires("hotplug.refuse", "vm0") is not None
        assert inj.fires("hotplug.refuse", "vm7") is None
        assert inj.fires("qmp.error", "vm0") is None

    def test_max_hits_budget(self):
        inj = injector_for(FaultSpec(kind="agent.stall", max_hits=2))
        assert inj.fires("agent.stall", "vm0") is not None
        assert inj.fires("agent.stall", "vm0") is not None
        assert inj.fires("agent.stall", "vm0") is None
        assert inj.hit_count("agent.stall") == 2

    def test_probability_draws_are_seed_deterministic(self):
        def outcomes(seed):
            inj = injector_for(
                FaultSpec(kind="frame.drop", probability=0.5), seed=seed)
            return [inj.fires("frame.drop", "br0") is not None
                    for _ in range(32)]

        assert outcomes(1) == outcomes(1)
        assert outcomes(1) != outcomes(2)  # astronomically unlikely to tie

    def test_window_gates_firing(self):
        clock = {"now": 0.0}
        inj = injector_for(
            FaultSpec(kind="frame.drop", after=1.0, until=2.0),
            now_fn=lambda: clock["now"])
        assert inj.fires("frame.drop", "br0") is None
        clock["now"] = 1.5
        assert inj.fires("frame.drop", "br0") is not None

    def test_record_emits_counter_and_event(self):
        with obs.capture() as (tracer, metrics):
            inj = injector_for(FaultSpec(kind="qmp.error", target="vm0"))
            assert inj.fires("qmp.error", "vm0", command="device_add")
            count = metrics.counter("fault.injected_total").value(
                kind="qmp.error", target="vm0")
            assert count == 1
            assert len(tracer.events_in("fault.qmp.error")) == 1

    def test_null_injector_never_fires(self):
        assert faults.NULL.enabled is False
        assert faults.NULL.fires("qmp.error", "vm0") is None
        assert faults.NULL.hit_count() == 0

    def test_use_installs_and_restores(self):
        inj = injector_for(FaultSpec(kind="qmp.error"))
        assert faults.injector() is faults.NULL
        with faults.use(inj):
            assert faults.injector() is inj
        assert faults.injector() is faults.NULL


@pytest.fixture
def cluster():
    host = PhysicalHost(Environment())
    vmm = Vmm(host)
    orch = Orchestrator(vmm)
    for i in range(3):
        orch.enroll(vmm.create_vm(f"vm{i}", vcpus=5, memory_gb=4))
    return host, vmm, orch


class TestInjectionSites:
    def test_hotplug_refusal_from_vmm(self, cluster):
        host, vmm, orch = cluster
        inj = injector_for(FaultSpec(kind="hotplug.refuse", target="vm0"))
        with faults.use(inj):
            with pytest.raises(HotplugError) as err:
                vmm.add_nic(vmm.vm("vm0"))
        assert err.value.vm == "vm0"
        assert err.value.retryable

    def test_qmp_error_fails_command(self, cluster):
        host, vmm, orch = cluster
        env = host.env
        inj = injector_for(FaultSpec(kind="qmp.error", target="vm0"),
                           now_fn=lambda: env.now)
        with faults.use(inj):
            process = env.process(
                vmm.qmp["vm0"].execute("device_add", id="net5"))
            with pytest.raises(HotplugError) as err:
                env.run(until=process)
        assert err.value.device == "net5"
        assert env.now > 0.0  # the failed round trip cost real time

    def test_qmp_latency_spike_slows_command(self, cluster):
        host, vmm, orch = cluster

        def timed(plan_specs):
            env = host.env
            inj = injector_for(*plan_specs, now_fn=lambda: env.now)
            start = env.now
            with faults.use(inj):
                process = env.process(vmm.qmp["vm0"].execute("query"))
                env.run(until=process)
            return env.now - start

        baseline = timed(())
        spiked = timed((FaultSpec(kind="qmp.latency", target="vm0",
                                  args=(("multiplier", 50.0),)),))
        assert spiked > baseline * 5

    def test_agent_stall_is_retryable(self, cluster):
        host, vmm, orch = cluster
        inj = injector_for(FaultSpec(kind="agent.stall", target="vm1",
                                     max_hits=1))
        with faults.use(inj):
            deployment = orch.deploy_pod(simple_pod("p", "alpine"),
                                         network="brfusion", node="vm1")
        assert orch.agents["vm1"].stalls == 1
        assert "p" in orch.deployments
        assert deployment.network == "brfusion"
        retries = [e for e in orch.recovery_log if e["action"] == "retry"]
        assert len(retries) == 1


class TestChaosController:
    def test_scheduled_vm_crash_and_restart(self, cluster):
        host, vmm, orch = cluster
        env = host.env
        plan = FaultPlan(specs=(
            FaultSpec(kind="vm.crash", target="vm1", at=0.01, duration=0.02),
        ))
        inj = FaultInjector(plan, host.rng.stream("faults"),
                            now_fn=lambda: env.now)
        controller = ChaosController(env, vmm, orch=orch, injector=inj)
        assert controller.start() == 1
        env.run(until=0.02)
        assert not vmm.vm("vm1").running
        assert not orch.node("vm1").ready
        env.run(until=0.05)
        assert vmm.vm("vm1").running
        assert orch.node("vm1").ready
        kinds = [kind for kind, _, _ in controller.executed]
        assert kinds == ["vm.crash", "vm.restart"]

    def test_crash_reschedules_pods(self, cluster):
        host, vmm, orch = cluster
        env = host.env
        orch.deploy_pod(simple_pod("p", "alpine"), network="nat", node="vm1")
        plan = FaultPlan(specs=(
            FaultSpec(kind="vm.crash", target="vm1", at=0.01),
        ))
        controller = ChaosController(env, vmm, orch=orch, plan=plan)
        controller.start()
        env.run(until=0.02)
        assert "p" in orch.deployments
        survivor = orch.deployments["p"].placement.node_names
        assert "vm1" not in survivor
        actions = [e["action"] for e in orch.recovery_log]
        assert "reschedule" in actions

    def test_link_partition_down_then_up(self):
        env = Environment()
        nic_a = PhysicalNic("eth-a")
        nic_b = PhysicalNic("eth-b")
        link = PhysicalLink("dc-link", nic_a, nic_b)
        host = PhysicalHost(Environment())  # vmm only needed for crashes
        plan = FaultPlan(specs=(
            FaultSpec(kind="link.partition", target="dc-*", at=0.01,
                      duration=0.02),
        ))
        controller = ChaosController(env, Vmm(host), plan=plan,
                                     links=[link])
        controller.start()
        env.run(until=0.02)
        assert not link.up
        env.run(until=0.05)
        assert link.up

"""The spawn worker pool: ordering, crash requeue, timeouts.

The job functions live at module top level so ``spawn`` workers can
pickle them by reference; the ones that misbehave do so only on their
first attempt, signalled through a sentinel file, so requeue-once
recovery has something to succeed at.
"""

import os
import pathlib
import time

import pytest

from repro.campaign.pool import Task, WorkerPool
from repro.errors import ConfigurationError, JobFailedError
from repro.faults.recovery import RetryPolicy


def _double(value):
    return value * 2


def _crash_on_first_attempt(sentinel_dir, value):
    flag = pathlib.Path(sentinel_dir) / f"crashed-{value}"
    if not flag.exists():
        flag.write_text("1")
        os._exit(13)
    return value


def _always_crash(value):
    os._exit(13)


def _hang_on_first_attempt(sentinel_dir, value):
    flag = pathlib.Path(sentinel_dir) / f"hung-{value}"
    if not flag.exists():
        flag.write_text("1")
        time.sleep(120)
    return value


def _raise(value):
    raise ValueError(f"deterministic failure for {value}")


class TestHappyPath:
    def test_results_in_task_order(self):
        pool = WorkerPool(workers=2)
        tasks = [Task(fn=_double, args=(i,)) for i in range(5)]
        assert pool.run(tasks) == [0, 2, 4, 6, 8]

    def test_empty(self):
        assert WorkerPool(workers=2).run([]) == []

    def test_on_result_streams_every_task(self):
        seen = []
        pool = WorkerPool(workers=2)
        tasks = [Task(fn=_double, args=(i,)) for i in range(4)]
        pool.run(tasks, on_result=lambda i, v: seen.append((i, v)))
        assert sorted(seen) == [(0, 0), (1, 2), (2, 4), (3, 6)]

    def test_single_worker(self):
        pool = WorkerPool(workers=1)
        assert pool.run([Task(fn=_double, args=(21,))]) == [42]


class TestRecovery:
    def test_crashed_worker_requeues_once(self, tmp_path):
        pool = WorkerPool(workers=2)
        tasks = [
            Task(fn=_crash_on_first_attempt, args=(str(tmp_path), 7),
                 label="crasher"),
            Task(fn=_double, args=(1,)),
        ]
        assert pool.run(tasks) == [7, 2]

    def test_persistent_crash_fails_the_job(self, tmp_path):
        pool = WorkerPool(workers=1)
        with pytest.raises(JobFailedError) as excinfo:
            pool.run([Task(fn=_always_crash, args=(1,), label="doomed")])
        assert excinfo.value.job == "doomed"
        assert excinfo.value.reason == "crash"

    def test_hung_worker_times_out_and_requeues(self, tmp_path):
        # Generous timeout: the first attempt's clock includes spawn +
        # import time, and CI machines are slow.
        pool = WorkerPool(workers=1, timeout_s=6.0)
        tasks = [Task(fn=_hang_on_first_attempt, args=(str(tmp_path), 3),
                      label="hanger")]
        assert pool.run(tasks) == [3]

    def test_deterministic_exception_fails_fast(self, tmp_path):
        pool = WorkerPool(workers=1)
        with pytest.raises(JobFailedError) as excinfo:
            pool.run([Task(fn=_raise, args=(9,), label="raiser")])
        assert excinfo.value.reason == "exception"
        assert "deterministic failure for 9" in str(excinfo.value)
        # fail-fast: no retry sentinel semantics apply to exceptions
        assert excinfo.value.job == "raiser"

    def test_retry_budget_is_the_policy(self, tmp_path):
        # max_attempts=1: no requeue at all, first crash is fatal.
        pool = WorkerPool(
            workers=1,
            retry=RetryPolicy(max_attempts=1, base_delay_s=0.0, jitter=0.0),
        )
        with pytest.raises(JobFailedError):
            pool.run([
                Task(fn=_crash_on_first_attempt, args=(str(tmp_path), 5)),
            ])


class TestValidation:
    def test_bad_workers(self):
        with pytest.raises(ConfigurationError):
            WorkerPool(workers=0)

    def test_bad_timeout(self):
        with pytest.raises(ConfigurationError):
            WorkerPool(workers=1, timeout_s=0)

"""The campaign CLI: --jobs/--cache/--bench/--seeds/--bench-baseline."""

import json

import pytest

from repro.harness.__main__ import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestCampaignMode:
    def test_jobs_flag_runs_campaign(self, capsys, tmp_path):
        code, out, _ = run_cli(
            capsys, "table01", "table02", "--preset", "quick",
            "--jobs", "2", "--cache", str(tmp_path / "cache"),
        )
        assert code == 0
        assert "Table 1" in out and "Table 2" in out
        assert "[campaign: 2 jobs, 0 cache hits, 2 workers" in out

    def test_warm_rerun_all_hits(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        args = ("table01", "table02", "--preset", "quick",
                "--jobs", "2", "--cache", cache)
        assert run_cli(capsys, *args)[0] == 0
        code, out, _ = run_cli(capsys, *args)
        assert code == 0
        assert out.count("cache hit (saved") == 2
        assert "[campaign: 2 jobs, 2 cache hits" in out

    def test_no_cache_flag(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        base = ("table01", "--preset", "quick", "--jobs", "2",
                "--cache", cache)
        assert run_cli(capsys, *base)[0] == 0
        code, out, _ = run_cli(capsys, *base, "--no-cache")
        assert code == 0
        assert "cache hit (saved" not in out
        assert "[campaign: 1 jobs, 0 cache hits" in out

    def test_bench_report_written(self, capsys, tmp_path):
        bench_path = tmp_path / "BENCH.json"
        code, out, _ = run_cli(
            capsys, "table01", "--preset", "quick",
            "--jobs", "2", "--bench", str(bench_path),
        )
        assert code == 0 and bench_path.exists()
        data = json.loads(bench_path.read_text())
        assert data["schema"] == "repro.campaign.bench/v1"
        assert data["jobs"] == 1
        assert data["entries"][0]["experiment"] == "table01"

    def test_seeds_axis(self, capsys, tmp_path):
        out_dir = tmp_path / "json"
        code, out, _ = run_cli(
            capsys, "fig08", "--preset", "quick", "--jobs", "2",
            "--seeds", "1,2", "--json", str(out_dir),
        )
        assert code == 0
        assert (out_dir / "fig08-s1.json").exists()
        assert (out_dir / "fig08-s2.json").exists()

    def test_cache_alone_enables_campaign_mode(self, capsys, tmp_path):
        code, out, _ = run_cli(
            capsys, "table01", "--preset", "quick",
            "--cache", str(tmp_path / "cache"),
        )
        assert code == 0 and "[campaign: 1 jobs" in out

    def test_bad_jobs_rejected(self, capsys, tmp_path):
        with pytest.raises(SystemExit):
            main(["table01", "--jobs", "0"])


class TestBenchGate:
    def test_gate_passes_against_own_baseline(self, capsys, tmp_path):
        bench_path = tmp_path / "BENCH.json"
        args = ("table01", "table02", "--preset", "quick", "--jobs", "2",
                "--cache", str(tmp_path / "cache"))
        assert run_cli(capsys, *args, "--bench", str(bench_path))[0] == 0
        # Warm rerun gated against the cold baseline: hits are not
        # compared, so the gate passes trivially-but-correctly.
        code, out, _ = run_cli(
            capsys, *args, "--bench-baseline", str(bench_path)
        )
        assert code == 0
        assert "no regression" in out

    def test_gate_fails_on_regression(self, capsys, tmp_path):
        from repro.campaign import bench as bench_mod

        bench_path = tmp_path / "BENCH.json"
        # fig02 runs long enough (~1 s) to clear the gate's noise floor.
        args = ("fig02", "--preset", "quick", "--jobs", "2")
        assert run_cli(capsys, *args, "--bench", str(bench_path))[0] == 0
        # Doctor the baseline: pretend fig02 used to be 100x faster.
        data = json.loads(bench_path.read_text())
        assert data["schema"] == bench_mod.SCHEMA
        for entry in data["entries"]:
            entry["wall_s"] = entry["wall_s"] / 100.0
        data["totals"]["serial_wall_s"] /= 100.0
        bench_path.write_text(json.dumps(data))
        code, out, err = run_cli(
            capsys, *args, "--bench-baseline", str(bench_path)
        )
        assert code == 1
        assert "PERF REGRESSION" in err and "fig02@quick" in err

"""Campaign spec expansion: axes, ordering, keys, validation."""

import pytest

from repro.campaign.spec import CampaignSpec, JobSpec, job_index
from repro.errors import ConfigurationError
from repro.harness.config import ExperimentConfig


class TestExpand:
    def test_cross_product_order(self):
        spec = CampaignSpec(
            experiments=("fig04", "fig08"),
            presets=("quick",),
            seeds=(1, 2),
        )
        jobs = spec.expand()
        assert [job.key for job in jobs] == [
            "fig04@quick#s1", "fig08@quick#s1",
            "fig04@quick#s2", "fig08@quick#s2",
        ]

    def test_default_seed_is_the_presets(self):
        spec = CampaignSpec(experiments=("fig08",), presets=("quick",))
        (job,) = spec.expand()
        assert job.seed == ExperimentConfig.preset("quick").seed
        assert job.config == ExperimentConfig.preset("quick")

    def test_seed_resolved_into_config(self):
        spec = CampaignSpec(
            experiments=("fig08",), presets=("quick",), seeds=(7,)
        )
        (job,) = spec.expand()
        assert job.config.seed == 7
        assert job.config.rr_transactions == (
            ExperimentConfig.preset("quick").rr_transactions
        )

    def test_fault_plan_threaded_into_every_job(self):
        spec = CampaignSpec(
            experiments=("fig08", "chaos"), presets=("quick",),
            fault_plan="plan.json",
        )
        assert all(j.config.fault_plan == "plan.json" for j in spec.expand())

    def test_expansion_is_deterministic(self):
        spec = CampaignSpec(
            experiments=("fig08", "fig04"), presets=("quick", "default"),
            seeds=(3, 1),
        )
        assert spec.expand() == spec.expand()

    def test_unknown_experiment(self):
        with pytest.raises(ConfigurationError, match="fig99"):
            CampaignSpec(experiments=("fig99",)).expand()

    def test_unknown_preset(self):
        with pytest.raises(ConfigurationError, match="warp"):
            CampaignSpec(experiments=("fig08",), presets=("warp",)).expand()


class TestValidation:
    def test_empty_experiments(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec(experiments=())

    def test_empty_presets(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec(experiments=("fig08",), presets=())

    def test_duplicate_axes(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec(experiments=("fig08", "fig08"))
        with pytest.raises(ConfigurationError):
            CampaignSpec(experiments=("fig08",), seeds=(1, 1))


class TestJobIndex:
    def test_by_key(self):
        jobs = CampaignSpec(
            experiments=("fig04", "fig08"), presets=("quick",)
        ).expand()
        by_key = job_index(jobs)
        assert set(by_key) == {j.key for j in jobs}

    def test_collision_rejected(self):
        config = ExperimentConfig.preset("quick")
        job = JobSpec("fig08", "quick", 1, config)
        with pytest.raises(ConfigurationError):
            job_index([job, job])

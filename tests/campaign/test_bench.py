"""Benchmark reports and the perf-regression gate."""

import copy

import pytest

from repro.campaign import bench
from repro.campaign.runner import run_campaign
from repro.campaign.spec import CampaignSpec
from repro.errors import ConfigurationError, PerfRegressionError


def make_report(walls, cache_hit=False, campaign_wall=None):
    """A bench report with one quick-preset entry per experiment."""
    entries = [
        {"experiment": experiment, "preset": "quick", "seed": 1,
         "wall_s": wall, "cache_hit": cache_hit}
        for experiment, wall in walls.items()
    ]
    serial = sum(walls.values())
    wall = campaign_wall if campaign_wall is not None else serial
    return {
        "schema": bench.SCHEMA,
        "jobs": len(entries),
        "workers": 2,
        "cache_hits": sum(1 for e in entries if e["cache_hit"]),
        "entries": entries,
        "totals": {
            "wall_s": wall,
            "serial_wall_s": serial,
            "speedup_vs_serial": serial / wall if wall else 0.0,
        },
    }


class TestBuildReport:
    def test_real_campaign(self):
        report = run_campaign(
            CampaignSpec(experiments=("table01", "table02"),
                         presets=("quick",)),
            jobs=1,
        )
        data = bench.build_report(report)
        assert data["schema"] == bench.SCHEMA
        assert data["jobs"] == 2 and data["cache_hits"] == 0
        assert {e["experiment"] for e in data["entries"]} == \
            {"table01", "table02"}
        assert data["totals"]["wall_s"] > 0

    def test_write_and_load(self, tmp_path):
        data = make_report({"fig08": 1.0})
        path = bench.write_report(data, tmp_path / "out" / "b.json")
        assert bench.load_report(path) == data

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text('{"schema": "something-else"}')
        with pytest.raises(ConfigurationError):
            bench.load_report(path)
        with pytest.raises(ConfigurationError):
            bench.load_report(tmp_path / "missing.json")


class TestCompare:
    def test_no_regression(self):
        baseline = make_report({"fig04": 2.0, "fig08": 1.0})
        current = make_report({"fig04": 2.1, "fig08": 0.9})
        assert bench.compare(current, baseline) == []

    def test_family_regression_flagged(self):
        baseline = make_report({"fig04": 2.0, "fig08": 1.0})
        current = make_report({"fig04": 3.0, "fig08": 1.0})
        violations = bench.compare(current, baseline)
        assert len(violations) >= 1
        assert any("fig04@quick" in v for v in violations)

    def test_serial_total_regression_flagged(self):
        baseline = make_report({"a": 1.0, "b": 1.0})
        current = make_report({"a": 1.3, "b": 1.3})
        violations = bench.compare(current, baseline, threshold_pct=25.0)
        assert any("serial total" in v for v in violations)

    def test_improvement_never_flags(self):
        baseline = make_report({"fig04": 3.0})
        current = make_report({"fig04": 0.5})
        assert bench.compare(current, baseline) == []

    def test_tiny_walls_ignored(self):
        baseline = make_report({"table01": 0.001})
        current = make_report({"table01": 0.01})  # 10x but microscopic
        assert bench.compare(current, baseline) == []

    def test_cache_hits_not_gated(self):
        baseline = make_report({"fig04": 1.0})
        current = make_report({"fig04": 99.0}, cache_hit=True)
        assert bench.compare(
            copy.deepcopy(current), copy.deepcopy(baseline)
        ) == []

    def test_threshold_knob(self):
        baseline = make_report({"fig04": 1.0})
        current = make_report({"fig04": 1.4})
        assert bench.compare(current, baseline, threshold_pct=50.0) == []
        assert bench.compare(current, baseline, threshold_pct=20.0)

    def test_bad_threshold(self):
        report = make_report({"fig04": 1.0})
        with pytest.raises(ConfigurationError):
            bench.compare(report, report, threshold_pct=0)

    def test_assert_no_regression_raises(self):
        baseline = make_report({"fig04": 1.0})
        current = make_report({"fig04": 2.0})
        with pytest.raises(PerfRegressionError, match="fig04"):
            bench.assert_no_regression(current, baseline)
        bench.assert_no_regression(baseline, baseline)

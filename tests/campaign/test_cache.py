"""Content-addressed result cache: keys, round trips, invalidation."""

import dataclasses
import json
import os
import pathlib

import pytest

from repro.campaign.cache import (
    CacheEntry,
    ResultCache,
    job_cache_key,
    source_fingerprint,
)
from repro.campaign.spec import JobSpec
from repro.harness.config import ExperimentConfig
from repro.harness.results import ExperimentResult


def make_job(experiment="fig08", seed=1, **config_kwargs):
    config = dataclasses.replace(
        ExperimentConfig.preset("quick"), seed=seed, **config_kwargs
    )
    return JobSpec(experiment, "quick", seed, config)


def make_result(experiment="fig08"):
    return ExperimentResult(
        experiment=experiment, title="T",
        rows=({"mode": "a", "v": 1.25}, {"mode": "b", "v": None}),
        notes=("n",),
        meta={"wall_s": 0.5},
    )


def make_entry(key, job=None, result=None):
    job = job or make_job()
    return CacheEntry(
        key=key, job_key=job.key, experiment=job.experiment,
        preset=job.preset, seed=job.seed, wall_s=1.5,
        result=result or make_result(job.experiment),
    )


class TestKeys:
    def test_stable(self):
        job = make_job()
        assert job_cache_key(job, "fp") == job_cache_key(job, "fp")

    def test_sensitive_to_job_identity(self):
        assert job_cache_key(make_job("fig08"), "fp") != \
            job_cache_key(make_job("fig04"), "fp")
        assert job_cache_key(make_job(seed=1), "fp") != \
            job_cache_key(make_job(seed=2), "fp")

    def test_sensitive_to_any_config_field(self):
        assert job_cache_key(make_job(), "fp") != \
            job_cache_key(make_job(rr_transactions=61), "fp")

    def test_sensitive_to_source_fingerprint(self):
        job = make_job()
        assert job_cache_key(job, "fp-a") != job_cache_key(job, "fp-b")

    def test_default_fingerprint_is_the_source_tree(self):
        job = make_job()
        assert job_cache_key(job) == job_cache_key(job, source_fingerprint())


class TestSourceFingerprint:
    def test_stable_within_process(self):
        assert source_fingerprint() == source_fingerprint()
        assert len(source_fingerprint()) == 64


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = job_cache_key(make_job(), "fp")
        assert cache.get(key) is None
        entry = make_entry(key)
        cache.put(entry)
        got = cache.get(key)
        assert got == entry
        assert got.result.rows == entry.result.rows
        assert len(cache) == 1

    def test_result_survives_exactly(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "k" * 64
        cache.put(make_entry(key))
        got = cache.get(key)
        assert got.result == make_result()
        assert type(got.result.rows[0]["v"]) is float
        assert got.result.rows[1]["v"] is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "a" * 64
        cache.put(make_entry(key))
        cache.path_for(key).write_text("{not json")
        assert cache.get(key) is None

    def test_wrong_key_inside_file_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key, other = "a" * 64, "b" * 64
        cache.put(make_entry(key))
        payload = json.loads(cache.path_for(key).read_text())
        cache.path_for(other).parent.mkdir(parents=True, exist_ok=True)
        cache.path_for(other).write_text(json.dumps(payload))
        assert cache.get(other) is None

    def test_put_is_idempotent(self, tmp_path):
        # Same content address ⇒ same payload by construction, so a
        # second put is a no-op: the first published entry stands.
        cache = ResultCache(tmp_path)
        key = "c" * 64
        cache.put(make_entry(key))
        newer = make_entry(key, result=ExperimentResult(
            experiment="fig08", title="T2", rows=({"x": 1},),
        ))
        assert cache.put(newer) == cache.path_for(key)
        assert cache.get(key).result.title == "T"
        assert len(cache) == 1
        assert not cache._lock_path(cache.path_for(key)).exists()

    def test_no_stray_temp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(make_entry("d" * 64))
        stray = [p for p in tmp_path.rglob("*") if p.name.startswith(".tmp-")]
        assert stray == []

    def test_fanout_layout(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "e1" + "0" * 62
        assert cache.path_for(key).parent.name == "e1"


class TestConcurrentSubmitters:
    """Two processes hammering one job key never corrupt or double it."""

    WRITER = """
import json, sys
sys.path.insert(0, {src!r})
from tests.campaign.test_cache import make_entry
from repro.campaign.cache import ResultCache

cache = ResultCache(sys.argv[1])
key = sys.argv[2]
for _ in range(40):
    path = cache.put(make_entry(key))
print(json.dumps(str(path)))
"""

    def test_two_process_put_race(self, tmp_path):
        import subprocess
        import sys

        key = "f" * 64
        src = str(pathlib.Path(__file__).resolve().parents[2])
        script = self.WRITER.format(src=src)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src + "/src", env.get("PYTHONPATH")) if p
        )
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, str(tmp_path), key],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env,
            )
            for _ in range(2)
        ]
        cache = ResultCache(tmp_path)
        # Read concurrently: a hit must always be a whole valid entry.
        while any(p.poll() is None for p in procs):
            got = cache.get(key)
            assert got is None or got == make_entry(key)
        for p in procs:
            out, err = p.communicate(timeout=30)
            assert p.returncode == 0, err.decode()
            assert json.loads(out) == str(cache.path_for(key))
        # Exactly one entry, no leftover locks or temp files.
        assert cache.get(key) == make_entry(key)
        assert len(cache) == 1
        stray = [p.name for p in tmp_path.rglob("*")
                 if p.name.endswith(".lock") or p.name.startswith(".tmp-")]
        assert stray == []

    def test_stale_lock_is_broken(self, tmp_path, monkeypatch):
        from repro.campaign import cache as cache_mod

        cache = ResultCache(tmp_path)
        key = "9" * 64
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        lock = cache._lock_path(path)
        lock.touch()
        # A fresh lock defers to its owner …
        assert cache._acquire_lock(path) is None
        # … but an abandoned one is broken and acquired.
        monkeypatch.setattr(cache_mod, "STALE_LOCK_S", -1.0)
        fd = cache._acquire_lock(path)
        assert fd is not None
        os.close(fd)

    def test_loser_still_sees_the_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "8" * 64
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        winner_fd = cache._acquire_lock(path)  # simulate a live writer
        try:
            assert cache.put(make_entry(key)) == path  # loser skips
        finally:
            os.close(winner_fd)
            cache._lock_path(path).unlink()
        cache.put(make_entry(key))
        assert cache.get(key) == make_entry(key)


class TestInvalidationStory:
    """The rules docs/architecture.md promises."""

    def test_code_edit_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = make_job()
        before = job_cache_key(job, "sources-before-edit")
        cache.put(make_entry(before))
        after = job_cache_key(job, "sources-after-edit")
        assert cache.get(after) is None

    def test_unrelated_job_unaffected(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(make_entry(job_cache_key(make_job("fig08"), "fp")))
        assert cache.get(job_cache_key(make_job("fig04"), "fp")) is None
        assert cache.get(job_cache_key(make_job("fig08"), "fp")) is not None


class TestDeadHolderLocks:
    """PID-aware lock reclaim: a crashed writer's lock is broken
    immediately, not after the STALE_LOCK_S minute."""

    def test_dead_holder_lock_is_reclaimed_immediately(self, tmp_path):
        import subprocess
        import sys

        cache = ResultCache(tmp_path)
        key = "a1" * 32
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # A process that exits right away: its PID is certainly dead.
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait(timeout=30)
        dead_pid = proc.pid
        lock = cache._lock_path(path)
        lock.write_text(f"{dead_pid}\n")  # fresh mtime, dead holder

        fd = cache._acquire_lock(path)  # no STALE_LOCK_S wait
        assert fd is not None
        os.close(fd)
        lock.unlink()

    def test_killed_locker_does_not_block_publication(self, tmp_path):
        """Regression: a writer SIGKILLed between locking and
        publishing used to stall every other writer of that key for
        STALE_LOCK_S; now the next put() reclaims and publishes."""
        import signal
        import subprocess
        import sys

        cache = ResultCache(tmp_path)
        key = "b2" * 32
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        src = str(pathlib.Path(__file__).resolve().parents[2])
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src + "/src", env.get("PYTHONPATH")) if p
        )
        # The locker takes the lock exactly as put() would (its own
        # PID inside), announces, then hangs until killed.
        locker = subprocess.Popen(
            [sys.executable, "-c", (
                "import sys, time\n"
                "from repro.campaign.cache import ResultCache\n"
                "cache = ResultCache(sys.argv[1])\n"
                "path = cache.path_for(sys.argv[2])\n"
                "path.parent.mkdir(parents=True, exist_ok=True)\n"
                "assert cache._acquire_lock(path) is not None\n"
                "print('locked', flush=True)\n"
                "time.sleep(300)\n"
            ), str(tmp_path), key],
            stdout=subprocess.PIPE, env=env,
        )
        try:
            assert locker.stdout.readline().strip() == b"locked"
            locker.send_signal(signal.SIGKILL)
            locker.wait(timeout=30)
            # The holder is dead; put() must win without waiting out
            # the age-based staleness rule.
            assert cache.put(make_entry(key)) == path
            assert cache.get(key) == make_entry(key)
            assert not cache._lock_path(path).exists()
        finally:
            if locker.poll() is None:
                locker.kill()

    def test_live_holder_lock_is_respected(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "c3" * 32
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd = cache._acquire_lock(path)  # this process: very much alive
        try:
            assert cache._acquire_lock(path) is None
            assert cache.put(make_entry(key)) == path  # loser skips
            assert cache.get(key) is None  # nothing was published
        finally:
            os.close(fd)
            cache._lock_path(path).unlink()

"""Campaign orchestration: identity with serial, caching, trace merge."""

import json

import pytest

from repro.campaign.cache import ResultCache
from repro.campaign.runner import run_campaign
from repro.campaign.spec import CampaignSpec
from repro.harness.registry import run_experiment

#: Fast experiments that still cover simulation, analytics and tables.
FAST = ("fig08", "table01", "table02")


def quick_spec(experiments=FAST, seeds=()):
    return CampaignSpec(
        experiments=tuple(experiments), presets=("quick",), seeds=seeds
    )


class TestIdentity:
    def test_parallel_rows_bit_identical_to_serial(self):
        spec = quick_spec()
        report = run_campaign(spec, jobs=2)
        assert [o.job.experiment for o in report.outcomes] == list(FAST)
        for outcome in report.outcomes:
            serial = run_experiment(outcome.job.experiment,
                                    outcome.job.config)
            assert outcome.result.rows == serial.rows
            assert outcome.result.notes == serial.notes
            assert outcome.result.experiment == serial.experiment

    def test_inline_equals_pooled(self):
        import dataclasses

        spec = quick_spec(("fig08", "table01"))
        inline = run_campaign(spec, jobs=1)
        pooled = run_campaign(spec, jobs=2)
        # meta carries each run's own wall clock; everything else —
        # rows, notes, titles — must match bit for bit.
        strip = [dataclasses.replace(r, meta={}) for r in inline.results()]
        assert strip == [
            dataclasses.replace(r, meta={}) for r in pooled.results()
        ]

    def test_cached_replay_identical(self, tmp_path):
        spec = quick_spec(("fig08", "table01"))
        cache = ResultCache(tmp_path)
        cold = run_campaign(spec, jobs=1, cache=cache)
        warm = run_campaign(spec, jobs=2, cache=cache)
        assert warm.results() == cold.results()


class TestCaching:
    def test_cold_then_warm(self, tmp_path):
        spec = quick_spec(("fig08", "table01"))
        cache = ResultCache(tmp_path)
        cold = run_campaign(spec, jobs=1, cache=cache)
        assert cold.cache_hits == 0
        warm = run_campaign(spec, jobs=1, cache=cache)
        assert warm.cache_hits == len(warm.outcomes) == 2
        assert all(o.cache_hit for o in warm.outcomes)

    def test_hits_report_original_wall(self, tmp_path):
        spec = quick_spec(("fig08",))
        cache = ResultCache(tmp_path)
        cold = run_campaign(spec, jobs=1, cache=cache)
        warm = run_campaign(spec, jobs=1, cache=cache)
        assert warm.outcomes[0].wall_s == pytest.approx(
            cold.outcomes[0].wall_s
        )

    def test_no_cache_means_no_files(self, tmp_path):
        run_campaign(quick_spec(("table01",)), jobs=1, cache=None)
        assert list(tmp_path.iterdir()) == []

    def test_seed_axis_distinct_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = quick_spec(("fig08",), seeds=(1, 2))
        cold = run_campaign(spec, jobs=1, cache=cache)
        assert len(cold.outcomes) == 2 and len(cache) == 2
        rows1, rows2 = (o.result.rows for o in cold.outcomes)
        assert rows1 != rows2  # different seeds, different samples


class TestProgressAndMeta:
    def test_progress_lines(self, tmp_path):
        lines = []
        cache = ResultCache(tmp_path)
        spec = quick_spec(("fig08", "table01"))
        run_campaign(spec, jobs=1, cache=cache, progress=lines.append)
        assert len(lines) == 2 and all("ran in" in l for l in lines)
        lines.clear()
        run_campaign(spec, jobs=1, cache=cache, progress=lines.append)
        assert len(lines) == 2 and all("cache hit" in l for l in lines)
        assert lines[0].startswith("[1/2]") and lines[1].startswith("[2/2]")

    def test_results_carry_meta(self):
        report = run_campaign(quick_spec(("fig08",)), jobs=1)
        meta = report.outcomes[0].result.meta
        assert meta["config_fingerprint"] == \
            report.outcomes[0].job.config.fingerprint()
        assert meta["wall_s"] >= 0

    def test_report_totals(self, tmp_path):
        report = run_campaign(quick_spec(("fig08", "table01")), jobs=1)
        assert report.workers == 1
        assert report.serial_wall_s == pytest.approx(
            sum(o.wall_s for o in report.outcomes)
        )
        assert report.wall_s > 0


class TestTraceMerge:
    def test_merged_trace_files(self, tmp_path):
        spec = quick_spec(("fig08", "fig02"))
        report = run_campaign(spec, jobs=2, trace_dir=tmp_path / "tr")
        chrome, spans, metrics = report.trace_files
        trace = json.loads(chrome.read_text())
        events = trace["traceEvents"]
        assert any(e.get("ph") == "X" for e in events)

        # Runs from different jobs live in distinct pid namespaces,
        # and process names carry the job key.
        names = {
            e["args"]["name"] for e in events
            if e.get("name") == "process_name"
        }
        assert any(n.startswith("fig08@quick") for n in names)
        assert any(n.startswith("fig02@quick") for n in names)

        for line in spans.read_text().splitlines():
            record = json.loads(line)
            assert {"kind", "cat", "name", "ts", "run"} <= set(record)
        assert "# TYPE" in metrics.read_text()

    def test_run_ids_disjoint_across_jobs(self, tmp_path):
        spec = quick_spec(("fig08", "fig02"))
        report = run_campaign(spec, jobs=2, trace_dir=tmp_path)
        by_job: dict[str, set[int]] = {}
        for run, name in report.trace.run_names.items():
            by_job.setdefault(name.split("/")[0], set()).add(run)
        jobs = list(by_job.values())
        assert len(jobs) == 2 and not (jobs[0] & jobs[1])

    def test_warm_campaign_has_empty_trace(self, tmp_path):
        spec = quick_spec(("fig08",))
        cache = ResultCache(tmp_path / "cache")
        run_campaign(spec, jobs=1, cache=cache)
        warm = run_campaign(spec, jobs=1, cache=cache,
                            trace_dir=tmp_path / "tr")
        assert warm.trace is not None and warm.trace.records == ()

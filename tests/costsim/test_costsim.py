"""Tests for the cost simulation: packing, baseline, improvement, report."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costsim import (
    BoughtVm,
    SavingsReport,
    improve_assignment,
    schedule_user,
    simulate_costs,
)
from repro.costsim.hostlo import split_pod_names
from repro.costsim.packing import PlacedContainer, total_cost
from repro.errors import CapacityError, ConfigurationError
from repro.traces import TraceConfig, generate_trace
from repro.traces.aws import model
from repro.traces.google import TraceContainer, TracePod


def pod(name, *sizes, splittable=True):
    return TracePod(
        name,
        tuple(TraceContainer(cpu=c, memory=m) for c, m in sizes),
        splittable=splittable,
    )


class TestBoughtVm:
    def test_place_and_capacity(self):
        vm = BoughtVm(model("2xlarge"))
        item = PlacedContainer("p", TraceContainer(0.05, 0.05), True)
        vm.place(item)
        assert vm.used_cpu == pytest.approx(0.05)
        assert vm.free_cpu == pytest.approx(vm.model.cpu_rel - 0.05)
        vm.remove(item)
        assert vm.is_empty

    def test_overflow_rejected(self):
        vm = BoughtVm(model("large"))
        with pytest.raises(CapacityError):
            vm.place(PlacedContainer("p", TraceContainer(0.5, 0.5), True))

    def test_requested_score(self):
        vm = BoughtVm(model("24xlarge"))
        vm.place(PlacedContainer("p", TraceContainer(0.5, 0.5), True))
        assert vm.requested_score() == pytest.approx(0.5)

    def test_shrunk_model(self):
        vm = BoughtVm(model("24xlarge"))
        vm.place(PlacedContainer("p", TraceContainer(0.05, 0.05), True))
        assert vm.shrunk_model().name == "2xlarge"

    def test_shrink_empty_rejected(self):
        with pytest.raises(CapacityError):
            BoughtVm(model("large")).shrunk_model()

    def test_clone_independent(self):
        vm = BoughtVm(model("large"))
        vm.place(PlacedContainer("p", TraceContainer(0.01, 0.01), True))
        copy = vm.clone()
        copy.remove(copy.placed[0])
        assert len(vm.placed) == 1
        assert vm.used_cpu == pytest.approx(0.01)


class TestKubernetesBaseline:
    def test_single_pod_buys_cheapest(self):
        vms = schedule_user([pod("p", (0.01, 0.01))])
        assert len(vms) == 1
        assert vms[0].model.name == "large"

    def test_whole_pod_constraint_buys_next_model_up(self):
        # 6 vCPU + 24 GB of containers: the paper's §2 motivating
        # example — whole-pod placement needs a 2xlarge.
        six_vcpu = 6 / 96
        vms = schedule_user([pod("p", (six_vcpu / 2, 12 / 384),
                                 (six_vcpu / 2, 12 / 384))])
        assert [vm.model.name for vm in vms] == ["2xlarge"]

    def test_most_requested_groups(self):
        vms = schedule_user([
            pod("a", (0.30, 0.30)),
            pod("b", (0.10, 0.10)),
            pod("c", (0.05, 0.05)),
        ])
        # biggest-first: a buys a 12xlarge; b and c fill it.
        assert len(vms) == 1

    def test_biggest_first_ordering(self):
        vms = schedule_user([pod("small", (0.01, 0.01)),
                             pod("big", (0.45, 0.45))])
        # big scheduled first onto its own VM; small joins it.
        assert len(vms) == 1
        assert vms[0].model.name == "12xlarge"

    def test_all_containers_of_pod_colocated(self):
        vms = schedule_user([pod("p", (0.1, 0.1), (0.1, 0.1), (0.1, 0.1))])
        assert len(vms) == 1
        assert len(vms[0].placed) == 3


class TestHostloImprovement:
    def test_motivating_example_savings(self):
        """§2: a 6 vCPU / 24 GB pod on a 2xlarge ($0.448) can split into
        a large + xlarge ($0.336)."""
        four_vcpu = 4 / 96
        two_vcpu = 2 / 96
        p = pod("p", (four_vcpu, 16 / 384), (two_vcpu, 8 / 384))
        baseline = schedule_user([p])
        assert total_cost(baseline) == pytest.approx(0.448)
        improved = improve_assignment(baseline)
        assert total_cost(improved) == pytest.approx(0.336)
        assert "p" in split_pod_names(improved)

    def test_unsplittable_pod_keeps_cost(self):
        four_vcpu = 4 / 96
        two_vcpu = 2 / 96
        p = pod("p", (four_vcpu, 16 / 384), (two_vcpu, 8 / 384),
                splittable=False)
        baseline = schedule_user([p])
        improved = improve_assignment(baseline)
        assert total_cost(improved) == pytest.approx(total_cost(baseline))

    def test_never_worse(self):
        users = generate_trace(TraceConfig(users=40, seed=11))
        for user in users:
            baseline = schedule_user(user.pods)
            improved = improve_assignment(baseline)
            assert total_cost(improved) <= total_cost(baseline) + 1e-9

    def test_improvement_preserves_all_containers(self):
        users = generate_trace(TraceConfig(users=25, seed=13))
        for user in users:
            baseline = schedule_user(user.pods)
            improved = improve_assignment(baseline)
            def count(vms):
                return sum(len(vm.placed) for vm in vms)
            assert count(improved) == count(baseline)

    def test_improvement_never_overfills(self):
        users = generate_trace(TraceConfig(users=25, seed=17))
        for user in users:
            improved = improve_assignment(schedule_user(user.pods))
            for vm in improved:
                assert vm.used_cpu <= vm.model.cpu_rel + 1e-9
                assert vm.used_memory <= vm.model.memory_rel + 1e-9

    @settings(max_examples=25, deadline=None)
    @given(st.lists(
        st.tuples(st.floats(min_value=0.005, max_value=0.15),
                  st.floats(min_value=0.005, max_value=0.15)),
        min_size=1, max_size=6,
    ))
    def test_random_pods_invariants_property(self, sizes):
        # Totals stay ≤ 0.9, so the whole pod always fits one machine.
        p = pod("p", *sizes)
        baseline = schedule_user([p])
        improved = improve_assignment(baseline)
        assert total_cost(improved) <= total_cost(baseline) + 1e-9
        assert sum(len(vm.placed) for vm in improved) == len(sizes)


class TestFullSimulation:
    def test_fig9_shape(self):
        """The headline fig 9 numbers, within generous bands."""
        users = generate_trace(TraceConfig())
        report = SavingsReport.from_outcomes(simulate_costs(users))
        assert report.user_count == 492
        assert 0.08 <= report.saver_fraction <= 0.18  # paper ≈ 11.4 %
        assert 0.5 <= report.savers_above_5pct_fraction <= 0.85  # ≈ 66.7 %
        assert 0.30 <= report.max_relative_saving <= 0.55  # ≈ 40 %
        assert report.max_absolute_saving > 50.0  # ≈ 237 $/h

    def test_histogram_counts_savers(self):
        users = generate_trace(TraceConfig(users=80, seed=3))
        report = SavingsReport.from_outcomes(simulate_costs(users))
        total = sum(count for _, count in report.histogram())
        assert total == sum(o.saved for o in report.outcomes)

    def test_render_mentions_key_stats(self):
        users = generate_trace(TraceConfig(users=60, seed=3))
        report = SavingsReport.from_outcomes(simulate_costs(users))
        text = report.render()
        assert "users saving money" in text
        assert "max absolute saving" in text

    def test_empty_report_rejected(self):
        with pytest.raises(ConfigurationError):
            SavingsReport.from_outcomes([])

    def test_outcome_properties(self):
        users = generate_trace(TraceConfig(users=30, seed=9))
        for outcome in simulate_costs(users):
            assert outcome.hostlo_cost <= outcome.kubernetes_cost + 1e-9
            assert 0.0 <= outcome.relative_saving < 1.0
            if outcome.split_pods:
                assert outcome.saved or outcome.vms_after <= outcome.vms_before

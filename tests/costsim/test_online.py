"""Tests for the online cost simulation extension."""

import pytest

from repro.costsim.online import (
    OnlineConfig,
    PodEvent,
    generate_events,
    simulate_online,
)
from repro.errors import ConfigurationError
from repro.traces import TraceConfig
from repro.traces.google import TraceContainer, TracePod


def small_events():
    return generate_events(OnlineConfig(
        trace=TraceConfig(users=25, seed=5), seed=5
    ))


class TestEventGeneration:
    def test_every_pod_gets_a_lifetime(self):
        config = OnlineConfig(trace=TraceConfig(users=25, seed=5))
        events = generate_events(config)
        from repro.traces import generate_trace

        pods = sum(len(u.pods) for u in generate_trace(config.trace))
        assert len(events) == pods
        for event in events:
            assert 0 <= event.arrival_h <= config.horizon_h
            assert event.duration_h >= 0.1
            assert event.departure_h > event.arrival_h

    def test_sorted_by_arrival(self):
        events = small_events()
        arrivals = [e.arrival_h for e in events]
        assert arrivals == sorted(arrivals)

    def test_deterministic(self):
        assert small_events() == small_events()

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            OnlineConfig(horizon_h=0)
        with pytest.raises(ConfigurationError):
            OnlineConfig(mean_duration_h=-1)


class TestOnlineSimulation:
    def test_hostlo_never_costs_more(self):
        outcome = simulate_online(small_events())
        assert outcome.hostlo_cost <= outcome.kubernetes_cost + 1e-9
        assert outcome.relative_saving >= 0.0

    def test_costs_are_positive_and_buys_counted(self):
        outcome = simulate_online(small_events())
        assert outcome.kubernetes_cost > 0
        assert outcome.kubernetes_buys > 0
        assert outcome.hostlo_peak_vms <= outcome.kubernetes_peak_vms

    def test_split_placements_happen(self):
        outcome = simulate_online(small_events())
        assert outcome.split_placements > 0

    def test_single_tiny_pod_stream(self):
        pod = TracePod("p", (TraceContainer(0.01, 0.01),))
        events = [PodEvent(pod=pod, arrival_h=0.0, duration_h=2.0)]
        outcome = simulate_online(events)
        # One 'large' VM for 2 h under both schedulers.
        assert outcome.kubernetes_cost == pytest.approx(0.112 * 2)
        assert outcome.hostlo_cost == pytest.approx(0.112 * 2)

    def test_back_to_back_pods_reuse_the_vm_or_not(self):
        pod = TracePod("p", (TraceContainer(0.01, 0.01),))
        # Non-overlapping lifetimes: the VM is released between them.
        events = [
            PodEvent(pod=pod, arrival_h=0.0, duration_h=1.0),
            PodEvent(pod=pod, arrival_h=5.0, duration_h=1.0),
        ]
        outcome = simulate_online(events)
        assert outcome.kubernetes_buys == 2
        assert outcome.kubernetes_cost == pytest.approx(0.112 * 2)

    def test_straddler_pod_split_avoids_a_big_buy(self):
        # One big 12xlarge-straddling pod arrives while two half-empty
        # 12xlarge VMs are running: splitting rides the waste.
        filler = TracePod("filler", (TraceContainer(0.30, 0.30),))
        straddler = TracePod("straddler", (
            TraceContainer(0.18, 0.18), TraceContainer(0.18, 0.18),
        ))
        events = [
            PodEvent(pod=filler, arrival_h=0.0, duration_h=10.0),
            PodEvent(pod=filler, arrival_h=0.1, duration_h=10.0),
            PodEvent(pod=straddler, arrival_h=1.0, duration_h=5.0),
        ]
        outcome = simulate_online(events)
        assert outcome.split_placements == 1
        assert outcome.hostlo_buys < outcome.kubernetes_buys
        assert outcome.hostlo_cost < outcome.kubernetes_cost

"""Tests for the AWS catalog and the synthetic trace generator."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CapacityError, ConfigurationError
from repro.traces import (
    BoundedWindow,
    M5_CATALOG,
    TraceConfig,
    cheapest_fitting,
    generate_trace,
    iter_pods,
    iter_users,
    stream_statistics,
)
from repro.traces.aws import BASE_MEMORY_GB, BASE_VCPUS, VmModel, model
from repro.traces import google
from repro.traces.google import TraceContainer, TracePod, trace_statistics


class TestAwsCatalog:
    def test_table2_verbatim(self):
        expected = {
            "large": (2, 8, 0.112),
            "xlarge": (4, 16, 0.224),
            "2xlarge": (8, 32, 0.448),
            "4xlarge": (16, 64, 0.896),
            "12xlarge": (48, 192, 2.689),
            "24xlarge": (96, 384, 5.376),
        }
        assert len(M5_CATALOG) == len(expected)
        for name, (vcpus, mem, price) in expected.items():
            m = model(name)
            assert (m.vcpus, m.memory_gb, m.price_per_h) == (vcpus, mem, price)

    def test_relative_resources_match_table2(self):
        assert model("large").cpu_rel == pytest.approx(0.0208, abs=1e-4)
        assert model("xlarge").cpu_rel == pytest.approx(0.0417, abs=1e-4)
        assert model("2xlarge").memory_rel == pytest.approx(0.0833, abs=1e-4)
        assert model("12xlarge").cpu_rel == pytest.approx(0.5)
        assert model("24xlarge").cpu_rel == 1.0

    def test_base_resources(self):
        assert BASE_VCPUS == 96 and BASE_MEMORY_GB == 384

    def test_cheapest_fitting_picks_price_order(self):
        assert cheapest_fitting(0.01, 0.01).name == "large"
        assert cheapest_fitting(0.03, 0.01).name == "xlarge"
        assert cheapest_fitting(0.4, 0.4).name == "12xlarge"
        assert cheapest_fitting(0.6, 0.1).name == "24xlarge"

    def test_cheapest_fitting_overflow(self):
        with pytest.raises(CapacityError):
            cheapest_fitting(1.1, 0.1)

    def test_unknown_model(self):
        with pytest.raises(ConfigurationError):
            model("13xlarge")

    def test_bad_model_rejected(self):
        with pytest.raises(ConfigurationError):
            VmModel(name="x", vcpus=0, memory_gb=1, price_per_h=1)

    @given(st.floats(min_value=1e-4, max_value=1.0),
           st.floats(min_value=1e-4, max_value=1.0))
    def test_cheapest_fitting_always_fits_property(self, cpu, mem):
        m = cheapest_fitting(cpu, mem)
        assert m.fits(cpu, mem)
        # No cheaper model fits.
        for other in M5_CATALOG:
            if other.price_per_h < m.price_per_h:
                assert not other.fits(cpu, mem)


class TestTraceModel:
    def test_container_validation(self):
        with pytest.raises(ConfigurationError):
            TraceContainer(cpu=0.0, memory=0.1)
        with pytest.raises(ConfigurationError):
            TraceContainer(cpu=0.1, memory=1.5)

    def test_pod_totals(self):
        pod = TracePod("p", (TraceContainer(0.1, 0.2), TraceContainer(0.3, 0.1)))
        assert pod.cpu == pytest.approx(0.4)
        assert pod.memory == pytest.approx(0.3)
        assert pod.size_key == pytest.approx(0.4)


class TestGenerator:
    def test_default_population_shape(self):
        users = generate_trace()
        assert len(users) == 492
        stats = trace_statistics(users)
        assert stats["pods"] > 1000
        assert stats["max_pods_per_user"] > 100  # whales exist

    def test_deterministic(self):
        a = generate_trace(TraceConfig(seed=7, users=50))
        b = generate_trace(TraceConfig(seed=7, users=50))
        assert [u.pods for u in a] == [u.pods for u in b]

    def test_different_seeds_differ(self):
        a = generate_trace(TraceConfig(seed=1, users=50))
        b = generate_trace(TraceConfig(seed=2, users=50))
        assert [u.pods for u in a] != [u.pods for u in b]

    def test_no_pod_exceeds_largest_machine(self):
        for user in generate_trace(TraceConfig(users=120, seed=3)):
            for pod in user.pods:
                assert pod.cpu <= 1.0 and pod.memory <= 1.0

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            TraceConfig(users=0)
        with pytest.raises(ConfigurationError):
            TraceConfig(small_user_fraction=0.9, medium_user_fraction=0.3)

    def test_some_pods_unsplittable(self):
        users = generate_trace(TraceConfig(users=200, seed=5))
        flags = [p.splittable for u in users for p in u.pods]
        assert any(flags) and not all(flags)


class TestStreamingGenerator:
    def test_deterministic_per_seed_and_chunk(self):
        config = TraceConfig(seed=11, users=900)
        a = list(iter_users(config, chunk=256))
        b = list(iter_users(config, chunk=256))
        assert [u.name for u in a] == [f"user-{i}" for i in range(900)]
        assert [u.pods for u in a] == [u.pods for u in b]

    def test_different_seeds_differ(self):
        a = list(iter_users(TraceConfig(seed=1, users=300), chunk=128))
        b = list(iter_users(TraceConfig(seed=2, users=300), chunk=128))
        assert [u.pods for u in a] != [u.pods for u in b]

    def test_chunks_are_independent(self):
        """Any chunk regenerates in isolation — a sharded service can
        produce chunk 2 without paying for chunks 0 and 1."""
        config = TraceConfig(seed=3, users=1000)
        full = list(iter_users(config, chunk=300))
        third = google._generate_chunk(config, 2, 600, 300)
        assert [u.pods for u in third] == [u.pods for u in full[600:900]]

    def test_iter_pods_flattens_the_population(self):
        config = TraceConfig(seed=4, users=200)
        expected = [p for u in iter_users(config, chunk=64) for p in u.pods]
        got = list(iter_pods(seed=4, n_users=200, chunk=64))
        assert got == expected
        assert all(p.cpu <= 1.0 and p.memory <= 1.0 for p in got)

    def test_stream_statistics_matches_eager_statistics(self):
        config = TraceConfig(seed=6, users=400)
        users = list(iter_users(config, chunk=128))
        eager = trace_statistics(users)
        streamed = stream_statistics(iter_users(config, chunk=128))
        assert set(streamed) == set(eager)
        for key, value in eager.items():
            assert streamed[key] == pytest.approx(value)

    def test_stream_statistics_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            stream_statistics(iter([]))

    def test_invalid_chunk(self):
        with pytest.raises(ConfigurationError):
            next(iter_users(TraceConfig(users=10), chunk=0))

    def test_eager_generation_past_limit_warns(self, monkeypatch):
        monkeypatch.setattr(google, "EAGER_LIMIT", 16)
        with pytest.warns(DeprecationWarning, match="iter_users"):
            generate_trace(TraceConfig(seed=1, users=17))

    def test_streaming_never_materializes(self):
        """Multi-chunk population through a BoundedWindow sentinel: the
        iteration itself proves no list of users is ever built."""
        chunk = 4096
        config = TraceConfig(seed=9, users=3 * chunk + 500)
        window = BoundedWindow(iter_users(config, chunk=chunk),
                               window=2 * chunk)
        stats = stream_statistics(window)
        assert stats["users"] == 3 * chunk + 500
        assert window.count == 3 * chunk + 500
        # Peak liveness is one chunk, not the population.
        assert window.peak <= chunk + 1

    def test_bounded_window_trips_on_materialization(self):
        window = BoundedWindow(iter_users(TraceConfig(seed=9, users=600),
                                          chunk=100), window=50)
        with pytest.raises(MemoryError, match="materialized"):
            list(window)

    def test_bounded_window_validation(self):
        with pytest.raises(ConfigurationError):
            BoundedWindow(iter([]), window=0)

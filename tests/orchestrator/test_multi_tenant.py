"""Multi-tenant BrFusion: per-tenant host bridges (§3.1's policy knob)."""

import pytest

from repro.core.testbed import Testbed
from repro.errors import TopologyError
from repro.net import resolve_path
from repro.net.addresses import cidr
from repro.orchestrator.plugins import BrFusionPlugin
from repro.orchestrator.pod import ContainerSpec, PodSpec


def pod(name):
    return PodSpec(name, containers=(
        ContainerSpec("server", "nginx", cpu=1, memory_gb=1,
                      publish=(("tcp", 80, 80),)),
    ))


@pytest.fixture
def tenant_testbed():
    tb = Testbed(seed=5)
    tb.add_vm("vm0")
    tb.host.add_bridge("tenant-a", cidr("10.10.0.0/24"))
    tb.host.add_bridge("tenant-b", cidr("10.20.0.0/24"))
    tb.host.isolate_tenants("tenant-a", "tenant-b")
    tb.orchestrator.register_plugin(
        BrFusionPlugin(bridge="tenant-a", name="brfusion-a")
    )
    tb.orchestrator.register_plugin(
        BrFusionPlugin(bridge="tenant-b", name="brfusion-b")
    )
    return tb


class TestTenantBridges:
    def test_pods_land_on_their_tenant_bridges(self, tenant_testbed):
        tb = tenant_testbed
        dep_a = tb.deploy(pod("pa"), network="brfusion-a")
        dep_b = tb.deploy(pod("pb"), network="brfusion-b")
        assert dep_a.plugin_state["pod_address"] in cidr("10.10.0.0/24")
        assert dep_b.plugin_state["pod_address"] in cidr("10.20.0.0/24")
        assert dep_a.plugin_state["pod_nic"].backend.bridge.name == "tenant-a"
        assert dep_b.plugin_state["pod_nic"].backend.bridge.name == "tenant-b"

    def test_same_tenant_pods_reach_each_other(self, tenant_testbed):
        tb = tenant_testbed
        dep1 = tb.deploy(pod("p1"), network="brfusion-a")
        dep2 = tb.deploy(pod("p2"), network="brfusion-a")
        path = resolve_path(
            dep1.namespace_of("server"),
            dep2.plugin_state["pod_address"], 80,
        )
        assert path.stages[-1].domain == "vm:vm0"
        assert path.count("netfilter_nat") == 0

    def test_cross_tenant_pods_are_isolated(self, tenant_testbed):
        tb = tenant_testbed
        dep_a = tb.deploy(pod("pa"), network="brfusion-a")
        dep_b = tb.deploy(pod("pb"), network="brfusion-b")
        # Pod A's namespace has no route toward tenant B's subnet at L2;
        # its default route leads to tenant A's gateway, where the walk
        # dies (the host does not route between tenant bridges for it).
        with pytest.raises(TopologyError):
            resolve_path(
                dep_a.namespace_of("server"),
                dep_b.plugin_state["pod_address"], 80,
            )

    def test_frames_also_isolated(self, tenant_testbed):
        from repro.net.forwarding import ForwardingEngine

        tb = tenant_testbed
        dep_a = tb.deploy(pod("pa"), network="brfusion-a")
        dep_b = tb.deploy(pod("pb"), network="brfusion-b")
        delivery = ForwardingEngine().send(
            dep_a.namespace_of("server"),
            dep_b.plugin_state["pod_address"], 80,
        )
        # The frame reaches the host router but is never switched onto
        # tenant B's bridge segment toward the pod.
        assert delivery.namespace != dep_b.namespace_of("server").name
"""Attach/detach symmetry: every plugin restores pre-attach wiring.

The contract (see :meth:`repro.orchestrator.cni.CniPlugin.detach`)
matters beyond pod removal: the orchestrator's recovery path rolls a
failed attach back through ``detach`` before retrying, so detach must
tolerate partially-attached state and must not leak devices, rules or
bridge ports.
"""

import pytest

from repro import faults
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.orchestrator import Orchestrator
from repro.orchestrator.pod import simple_pod
from repro.sim import Environment, RngRegistry
from repro.virt import PhysicalHost, Vmm


@pytest.fixture
def cluster():
    host = PhysicalHost(Environment())
    vmm = Vmm(host)
    orch = Orchestrator(vmm)
    for i in range(3):
        orch.enroll(vmm.create_vm(f"vm{i}", vcpus=5, memory_gb=4))
    for node in orch.nodes.values():
        # Materialise docker0 (and its one masquerade rule) up front:
        # it is per-VM infrastructure that survives pod removal, so the
        # symmetry snapshots must not see its lazy creation as a leak.
        node.engine.bridge
    return host, vmm, orch


def wiring_snapshot(host, vmm, orch):
    """Everything attach may touch, summarised for equality checks."""
    return {
        "virtio_nics": {name: len(node.vm.virtio_nics())
                        for name, node in orch.nodes.items()},
        "iptables_rules": {name: node.engine.iptables_rule_count()
                           for name, node in orch.nodes.items()},
        "host_bridge_ports": len(host.default_bridge.ports),
        "hostlos": sorted(vmm._hostlos),
        "allocated_cpu": {name: node.cpu_allocated
                          for name, node in orch.nodes.items()},
    }


SPECS = {
    "nat": dict(containers=1, publish=(("tcp", 8080, 80),)),
    "brfusion": dict(containers=1, publish=(("tcp", 8081, 80),)),
    # 3 x 2 vCPU cannot fit one 5-vCPU node: forces a split.
    "hostlo": dict(containers=3, cpu=2.0, publish=(("tcp", 8082, 80),)),
}


@pytest.mark.parametrize("network", sorted(SPECS))
class TestSymmetry:
    def deploy(self, orch, network, name="p"):
        spec = simple_pod(name, "alpine", **SPECS[network])
        return orch.deploy_pod(spec, network=network,
                               allow_split=(network == "hostlo"))

    def test_remove_restores_wiring(self, cluster, network):
        host, vmm, orch = cluster
        before = wiring_snapshot(host, vmm, orch)
        deployment = self.deploy(orch, network)
        if network == "hostlo":
            assert deployment.is_split  # the spec must actually split
        assert wiring_snapshot(host, vmm, orch) != before
        orch.remove_pod("p")
        assert wiring_snapshot(host, vmm, orch) == before

    def test_reattach_after_detach(self, cluster, network):
        host, vmm, orch = cluster
        self.deploy(orch, network)
        orch.remove_pod("p")
        deployment = self.deploy(orch, network)
        assert "p" in orch.deployments
        assert deployment.intra_addresses  # wired again
        if network != "hostlo":
            # Split hostlo pods publish nothing (the fragment carrier
            # already hosts the hostlo endpoint); the others must have
            # re-created their external endpoints.
            assert deployment.external_endpoints

    def test_detach_is_idempotent(self, cluster, network):
        host, vmm, orch = cluster
        deployment = self.deploy(orch, network)
        plugin = orch.plugin(network)
        plugin.detach(orch, deployment)
        plugin.detach(orch, deployment)  # second run must not raise
        assert deployment.intra_addresses == {}
        assert deployment.external_endpoints == {}

    def test_detach_tolerates_unattached_deployment(self, cluster, network):
        host, vmm, orch = cluster
        deployment = self.deploy(orch, network)
        # Simulate a partial attach: wipe the wiring bookkeeping first.
        plugin = orch.plugin(network)
        plugin.detach(orch, deployment)
        deployment.plugin_state.clear()
        plugin.detach(orch, deployment)


class TestRollbackViaDetach:
    def test_failed_attach_leaves_no_orphan_nic(self, cluster):
        host, vmm, orch = cluster
        baseline = {n: len(node.vm.virtio_nics())
                    for n, node in orch.nodes.items()}
        # The agent stalls once *after* the VMM provisioned the NIC; the
        # retry path must roll the orphan back before re-attaching.
        inj = FaultInjector(
            FaultPlan(specs=(FaultSpec(kind="agent.stall", max_hits=1),)),
            RngRegistry(3).stream("faults"))
        with faults.use(inj):
            orch.deploy_pod(simple_pod("p", "alpine"), network="brfusion",
                            node="vm0")
        after = {n: len(node.vm.virtio_nics())
                 for n, node in orch.nodes.items()}
        assert after["vm0"] == baseline["vm0"] + 1  # exactly one pod NIC
        orch.remove_pod("p")
        final = {n: len(node.vm.virtio_nics())
                 for n, node in orch.nodes.items()}
        assert final == baseline

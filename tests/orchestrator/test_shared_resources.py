"""§4.3 integration: volumes/shared memory gate and equip split pods."""

import pytest

from repro.errors import CapacityError
from repro.orchestrator import Orchestrator
from repro.orchestrator.pod import ContainerSpec, PodSpec
from repro.sim import Environment
from repro.virt import PhysicalHost, Vmm


def make_orchestrator(virtfs=True, mempipe=True):
    host = PhysicalHost(Environment())
    vmm = Vmm(host)
    orch = Orchestrator(vmm, virtfs_available=virtfs,
                        mempipe_available=mempipe)
    for i in range(2):
        orch.enroll(vmm.create_vm(f"vm{i}", vcpus=5, memory_gb=4))
    return orch


def big_pod(name="p", volumes=(), shared_memory=False, splittable=True):
    # Two 3-vCPU containers cannot share one 5-vCPU VM: must split.
    return PodSpec(
        name,
        containers=(
            ContainerSpec("a", "memcached", cpu=3, memory_gb=1),
            ContainerSpec("b", "memcached", cpu=3, memory_gb=1),
        ),
        volumes=tuple(volumes),
        shared_memory=shared_memory,
        splittable=splittable,
    )


class TestCanSplitOn:
    def test_plain_pod_splits(self):
        assert big_pod().can_split_on(False, False)

    def test_volumes_need_virtfs(self):
        pod = big_pod(volumes=("data",))
        assert pod.can_split_on(True, False)
        assert not pod.can_split_on(False, True)

    def test_shared_memory_needs_mempipe(self):
        pod = big_pod(shared_memory=True)
        assert pod.can_split_on(False, True)
        assert not pod.can_split_on(True, False)

    def test_explicit_opt_out_wins(self):
        assert not big_pod(splittable=False).can_split_on(True, True)

    def test_duplicate_volumes_rejected(self):
        with pytest.raises(Exception):
            big_pod(volumes=("data", "data"))


class TestSplitProvisioning:
    def test_split_pod_gets_virtfs_mounts(self):
        orch = make_orchestrator()
        dep = orch.deploy_pod(big_pod(volumes=("data", "logs")),
                              network="hostlo", allow_split=True)
        assert dep.is_split
        shares = dep.plugin_state["virtfs_shares"]
        assert len(shares) == 2
        for share in shares:
            assert share.guest_count == 2
        assert orch.virtfs.shares() == ("p/data", "p/logs")

    def test_split_pod_gets_mempipe_channel(self):
        orch = make_orchestrator()
        dep = orch.deploy_pod(big_pod(shared_memory=True),
                              network="hostlo", allow_split=True)
        channels = dep.plugin_state["mempipe_channels"]
        assert len(channels) == 1
        names = set(dep.placement.node_names)
        assert {channels[0].vm_a, channels[0].vm_b} == names

    def test_whole_pod_gets_no_shared_resources(self):
        orch = make_orchestrator()
        small = PodSpec(
            "small",
            containers=(ContainerSpec("a", "alpine", cpu=1, memory_gb=1),
                        ContainerSpec("b", "alpine", cpu=1, memory_gb=1)),
            volumes=("data",),
        )
        dep = orch.deploy_pod(small, network="hostlo", allow_split=True)
        assert not dep.is_split
        assert "virtfs_shares" not in dep.plugin_state
        assert orch.virtfs.shares() == ()

    def test_remove_pod_releases_shares_and_channels(self):
        orch = make_orchestrator()
        orch.deploy_pod(big_pod(volumes=("data",), shared_memory=True),
                        network="hostlo", allow_split=True)
        assert orch.virtfs.shares() == ("p/data",)
        orch.remove_pod("p")
        assert orch.virtfs.shares() == ()
        assert orch.mempipe.channel_between("vm0", "vm1") is None


class TestFeasibilityGate:
    def test_no_virtfs_blocks_split_of_volume_pod(self):
        orch = make_orchestrator(virtfs=False)
        # Whole-pod placement is impossible (6 vCPUs on 5-vCPU VMs),
        # and the split is not legal without VirtFS.
        with pytest.raises(CapacityError):
            orch.deploy_pod(big_pod(volumes=("data",)),
                            network="hostlo", allow_split=True)

    def test_no_mempipe_blocks_split_of_shm_pod(self):
        orch = make_orchestrator(mempipe=False)
        with pytest.raises(CapacityError):
            orch.deploy_pod(big_pod(shared_memory=True),
                            network="hostlo", allow_split=True)

    def test_plain_pod_splits_without_either(self):
        orch = make_orchestrator(virtfs=False, mempipe=False)
        dep = orch.deploy_pod(big_pod(), network="hostlo", allow_split=True)
        assert dep.is_split

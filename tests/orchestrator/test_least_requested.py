"""Tests for the spreading scheduler and the policy knob in costsim."""

import pytest

from repro.costsim.kubernetes import schedule_user
from repro.orchestrator.node import Node
from repro.orchestrator.pod import simple_pod
from repro.orchestrator.scheduler import (
    LeastRequestedScheduler,
    MostRequestedScheduler,
)
from repro.sim import Environment
from repro.traces.google import TraceContainer, TracePod
from repro.virt import PhysicalHost, Vmm


def make_nodes():
    host = PhysicalHost(Environment())
    vmm = Vmm(host)
    nodes = [Node(vmm.create_vm(f"vm{i}", vcpus=5, memory_gb=8))
             for i in range(2)]
    nodes[0].allocate(2, 2)  # vm0 is fuller
    return nodes


class TestLeastRequested:
    def test_prefers_emptiest_node(self):
        nodes = make_nodes()
        placement = LeastRequestedScheduler().place_whole(
            nodes, simple_pod("p", "alpine")
        )
        assert placement.node_names == ("vm1",)

    def test_most_requested_prefers_fullest(self):
        nodes = make_nodes()
        placement = MostRequestedScheduler().place_whole(
            nodes, simple_pod("p", "alpine")
        )
        assert placement.node_names == ("vm0",)

    def test_split_spreads_too(self):
        nodes = make_nodes()
        spec = simple_pod("p", "alpine", containers=2, cpu=1, memory_gb=1)
        placement = LeastRequestedScheduler().place_split(nodes, spec)
        # Spreading starts on vm1 and, as vm1 fills, keeps balancing.
        assert placement.node_of("c0") == "vm1"


class TestCostsimPolicy:
    def pods(self):
        return [
            TracePod(f"p{i}", (TraceContainer(0.01, 0.01),))
            for i in range(6)
        ]

    def test_policies_give_valid_packings(self):
        for policy in ("most-requested", "least-requested"):
            vms = schedule_user(self.pods(), policy=policy)
            assert sum(len(vm.placed) for vm in vms) == 6
            for vm in vms:
                assert vm.used_cpu <= vm.model.cpu_rel + 1e-9

    def test_unknown_policy_rejected(self):
        with pytest.raises(KeyError):
            schedule_user(self.pods(), policy="random")

"""Tests for pod specs, nodes and the most-requested scheduler."""

import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.orchestrator import MostRequestedScheduler, Node
from repro.orchestrator.pod import ContainerSpec, PodSpec, pod, simple_pod
from repro.sim import Environment
from repro.virt import PhysicalHost, Vmm


def make_nodes(*sizes):
    host = PhysicalHost(Environment())
    vmm = Vmm(host)
    nodes = []
    for i, (vcpus, mem) in enumerate(sizes):
        vm = vmm.create_vm(f"vm{i}", vcpus=vcpus, memory_gb=mem)
        nodes.append(Node(vm))
    return nodes


class TestSpecs:
    def test_pod_totals(self):
        spec = pod(
            "p",
            ContainerSpec("a", "nginx", cpu=2, memory_gb=4),
            ContainerSpec("b", "memcached", cpu=1, memory_gb=2),
        )
        assert spec.cpu == 3
        assert spec.memory_gb == 6

    def test_pod_validation(self):
        with pytest.raises(ConfigurationError):
            PodSpec("p", containers=())
        with pytest.raises(ConfigurationError):
            pod("p", ContainerSpec("a", "x"), ContainerSpec("a", "y"))
        with pytest.raises(ConfigurationError):
            ContainerSpec("a", "x", cpu=0)
        with pytest.raises(ConfigurationError):
            PodSpec("", containers=(ContainerSpec("a", "x"),))

    def test_container_lookup(self):
        spec = simple_pod("p", "alpine", containers=3)
        assert spec.container("c1").name == "c1"
        with pytest.raises(ConfigurationError):
            spec.container("ghost")

    def test_simple_pod_publish_on_first(self):
        spec = simple_pod("p", "nginx", containers=2,
                          publish=[("tcp", 8080, 80)])
        assert spec.containers[0].publish == (("tcp", 8080, 80),)
        assert spec.containers[1].publish == ()


class TestNode:
    def test_allocate_release(self):
        (node,) = make_nodes((5, 4))
        node.allocate(2, 1)
        assert node.cpu_free == 3
        node.release(2, 1)
        assert node.cpu_free == 5

    def test_over_allocate_rejected(self):
        (node,) = make_nodes((5, 4))
        with pytest.raises(CapacityError):
            node.allocate(6, 1)
        with pytest.raises(CapacityError):
            node.allocate(1, 10)

    def test_requested_score(self):
        (node,) = make_nodes((4, 8))
        assert node.requested_score() == 0
        node.allocate(2, 4)
        assert node.requested_score() == pytest.approx(0.5)


class TestWholePodPlacement:
    def test_grouping_prefers_fuller_node(self):
        nodes = make_nodes((5, 8), (5, 8))
        nodes[1].allocate(2, 2)
        sched = MostRequestedScheduler()
        placement = sched.place_whole(nodes, simple_pod("p", "alpine"))
        assert placement.node_names == ("vm1",)
        assert not placement.is_split

    def test_skips_full_nodes(self):
        nodes = make_nodes((5, 8), (5, 8))
        nodes[1].allocate(5, 8)
        sched = MostRequestedScheduler()
        placement = sched.place_whole(nodes, simple_pod("p", "alpine"))
        assert placement.node_names == ("vm0",)

    def test_no_fit_raises(self):
        nodes = make_nodes((2, 2))
        sched = MostRequestedScheduler()
        big = simple_pod("p", "alpine", containers=4, cpu=1, memory_gb=1)
        with pytest.raises(CapacityError):
            sched.place_whole(nodes, big)

    def test_all_containers_same_node(self):
        nodes = make_nodes((5, 8))
        sched = MostRequestedScheduler()
        placement = sched.place_whole(nodes, simple_pod("p", "alpine", 3))
        assert set(n for _, n in placement.assignments) == {"vm0"}


class TestSplitPlacement:
    def test_split_when_too_big_for_one_node(self):
        nodes = make_nodes((2, 4), (2, 4))
        sched = MostRequestedScheduler()
        spec = simple_pod("p", "alpine", containers=3, cpu=1, memory_gb=1)
        placement = sched.place_split(nodes, spec)
        assert placement.is_split
        assert len(placement.assignments) == 3

    def test_whole_fit_stays_grouped(self):
        nodes = make_nodes((5, 8), (5, 8))
        nodes[0].allocate(1, 1)
        sched = MostRequestedScheduler()
        spec = simple_pod("p", "alpine", containers=2, cpu=1, memory_gb=1)
        placement = sched.place_split(nodes, spec)
        assert placement.node_names == ("vm0",)  # grouping policy

    def test_biggest_first_order(self):
        nodes = make_nodes((4, 8), (2, 4))
        sched = MostRequestedScheduler()
        spec = pod(
            "p",
            ContainerSpec("small", "alpine", cpu=1, memory_gb=1),
            ContainerSpec("big", "alpine", cpu=4, memory_gb=4),
        )
        placement = sched.place_split(nodes, spec)
        # big can only fit on vm0; small follows the most-requested node.
        assert placement.node_of("big") == "vm0"

    def test_unsplittable_pod_placed_whole(self):
        nodes = make_nodes((2, 4), (2, 4))
        sched = MostRequestedScheduler()
        spec = PodSpec(
            "p",
            containers=tuple(
                ContainerSpec(f"c{i}", "alpine", cpu=1, memory_gb=1)
                for i in range(3)
            ),
            splittable=False,
        )
        with pytest.raises(CapacityError):
            sched.place_split(nodes, spec)  # must go whole, cannot

    def test_split_no_fit_raises(self):
        nodes = make_nodes((1, 1))
        sched = MostRequestedScheduler()
        spec = simple_pod("p", "alpine", containers=3, cpu=1, memory_gb=1)
        with pytest.raises(CapacityError):
            sched.place_split(nodes, spec)

    def test_assignments_preserve_container_order(self):
        nodes = make_nodes((2, 4), (2, 4))
        sched = MostRequestedScheduler()
        spec = simple_pod("p", "alpine", containers=3, cpu=1, memory_gb=1)
        placement = sched.place_split(nodes, spec)
        assert [c for c, _ in placement.assignments] == ["c0", "c1", "c2"]

    def test_node_of_unknown_raises(self):
        nodes = make_nodes((5, 8))
        sched = MostRequestedScheduler()
        placement = sched.place_whole(nodes, simple_pod("p", "alpine"))
        with pytest.raises(CapacityError):
            placement.node_of("ghost")

"""End-to-end orchestrator tests: deploy pods under each CNI plugin and
verify the resulting datapaths have the paper's shapes."""

import pytest

from repro.errors import ConfigurationError, SchedulingError
from repro.net import resolve_path
from repro.net.addresses import ip
from repro.orchestrator import Orchestrator
from repro.orchestrator.pod import ContainerSpec, pod, simple_pod
from repro.sim import Environment
from repro.virt import PhysicalHost, Vmm


@pytest.fixture
def cluster():
    host = PhysicalHost(Environment())
    vmm = Vmm(host)
    orch = Orchestrator(vmm)
    for i in range(2):
        orch.enroll(vmm.create_vm(f"vm{i}", vcpus=5, memory_gb=4))
    client = host.create_attached_namespace("client", domain="client")
    return host, vmm, orch, client


def two_tier_pod(name="p", publish=(("tcp", 8080, 80),)):
    return pod(
        name,
        ContainerSpec("app", "nginx", cpu=1, memory_gb=1,
                      publish=tuple(publish)),
        ContainerSpec("cache", "memcached", cpu=1, memory_gb=1),
    )


class TestEnrollment:
    def test_enroll_and_lookup(self, cluster):
        host, vmm, orch, _ = cluster
        assert orch.node("vm0").vm.name == "vm0"
        assert orch.agent("vm0").node is orch.node("vm0")

    def test_double_enroll_rejected(self, cluster):
        host, vmm, orch, _ = cluster
        with pytest.raises(ConfigurationError):
            orch.enroll(vmm.vm("vm0"))

    def test_unknown_node_raises(self, cluster):
        _, _, orch, _ = cluster
        with pytest.raises(SchedulingError):
            orch.node("ghost")


class TestNatDeployment:
    def test_deploy_wires_external_endpoint(self, cluster):
        host, vmm, orch, client = cluster
        dep = orch.deploy_pod(two_tier_pod(), network="nat")
        addr, port = dep.external_endpoints["app"]
        assert port == 8080
        path = resolve_path(client, addr, port)
        assert path.count("netfilter_nat") == 1  # guest DNAT
        assert path.stage_names().count("bridge_fwd") == 2

    def test_intra_pod_is_localhost(self, cluster):
        host, vmm, orch, _ = cluster
        dep = orch.deploy_pod(two_tier_pod(), network="nat")
        addr = dep.intra_address("cache")
        path = resolve_path(dep.namespace_of("app"), addr, 11211)
        assert "loopback_xmit" in path.stage_names()

    def test_containers_share_fragment_namespace(self, cluster):
        _, _, orch, _ = cluster
        dep = orch.deploy_pod(two_tier_pod(), network="nat")
        assert dep.namespace_of("app") is dep.namespace_of("cache")

    def test_split_rejected(self, cluster):
        _, _, orch, _ = cluster
        with pytest.raises(SchedulingError):
            orch.deploy_pod(two_tier_pod(), network="nat", allow_split=True)

    def test_duplicate_pod_rejected(self, cluster):
        _, _, orch, _ = cluster
        orch.deploy_pod(two_tier_pod(), network="nat")
        with pytest.raises(SchedulingError):
            orch.deploy_pod(two_tier_pod(), network="nat")

    def test_resources_accounted_and_released(self, cluster):
        _, _, orch, _ = cluster
        dep = orch.deploy_pod(two_tier_pod(), network="nat")
        node = orch.node(dep.placement.node_names[0])
        assert node.cpu_allocated == 2
        orch.remove_pod("p")
        assert node.cpu_allocated == 0
        with pytest.raises(SchedulingError):
            orch.deployment("p")


class TestBrFusionDeployment:
    def test_path_has_nocont_shape(self, cluster):
        host, vmm, orch, client = cluster
        nat_dep = orch.deploy_pod(two_tier_pod("pnat"), network="nat")
        brf_dep = orch.deploy_pod(two_tier_pod("pbrf"), network="brfusion")
        addr, port = brf_dep.external_endpoints["app"]
        brf_path = resolve_path(client, addr, port)
        assert brf_path.count("netfilter_nat") == 0
        assert brf_path.stage_names().count("bridge_fwd") == 1
        nat_addr, nat_port = nat_dep.external_endpoints["app"]
        nat_path = resolve_path(client, nat_addr, nat_port)
        assert len(brf_path.stages) < len(nat_path.stages)

    def test_pod_address_on_host_bridge_subnet(self, cluster):
        host, _, orch, _ = cluster
        dep = orch.deploy_pod(two_tier_pod(), network="brfusion")
        assert dep.plugin_state["pod_address"] in host.bridge_network("virbr0")

    def test_agent_configured_by_mac(self, cluster):
        _, _, orch, _ = cluster
        dep = orch.deploy_pod(two_tier_pod(), network="brfusion")
        node_name = dep.placement.node_names[0]
        nic = dep.plugin_state["pod_nic"]
        assert nic.mac in orch.agent(node_name).configured

    def test_remove_pod_unplugs_nic(self, cluster):
        host, _, orch, _ = cluster
        dep = orch.deploy_pod(two_tier_pod(), network="brfusion")
        tap = dep.plugin_state["pod_nic"].backend
        orch.remove_pod("p")
        assert not host.default_bridge.has_port(tap)


class TestHostloDeployment:
    def split_pod(self, name="p"):
        # 3 containers of 2 vCPUs each cannot fit a single 5-vCPU VM.
        return simple_pod(name, "memcached", containers=3, cpu=2, memory_gb=1)

    def test_split_deployment_spans_vms(self, cluster):
        _, _, orch, _ = cluster
        dep = orch.deploy_pod(self.split_pod(), network="hostlo",
                              allow_split=True)
        assert dep.is_split
        assert len(dep.placement.node_names) == 2

    def test_intra_pod_path_uses_hostlo(self, cluster):
        _, _, orch, _ = cluster
        dep = orch.deploy_pod(self.split_pod(), network="hostlo",
                              allow_split=True)
        # Find two containers on different nodes.
        nodes = {c: dep.placement.node_of(c) for c in dep.containers}
        c_src = "c0"
        c_dst = next(c for c, n in nodes.items() if n != nodes[c_src])
        path = resolve_path(
            dep.namespace_of(c_src), dep.intra_address(c_dst), 11211
        )
        assert "hostlo_reflect" in path.stage_names()
        assert "bridge_fwd" not in path.stage_names()
        assert path.jitter_class == "hostlo"

    def test_same_fragment_uses_loopback(self, cluster):
        _, _, orch, _ = cluster
        dep = orch.deploy_pod(self.split_pod(), network="hostlo",
                              allow_split=True)
        nodes = {c: dep.placement.node_of(c) for c in dep.containers}
        pairs = [(a, b) for a in nodes for b in nodes
                 if a != b and nodes[a] == nodes[b]]
        assert pairs, "expected two containers sharing a fragment"
        a, b = pairs[0]
        path = resolve_path(dep.namespace_of(a), dep.intra_address(b), 11211)
        assert "loopback_xmit" in path.stage_names()
        assert "hostlo_reflect" not in path.stage_names()

    def test_single_node_pod_falls_back_to_loopback(self, cluster):
        _, _, orch, _ = cluster
        dep = orch.deploy_pod(simple_pod("small", "memcached", 2),
                              network="hostlo", allow_split=True)
        assert not dep.is_split
        assert str(dep.intra_address("c0")) == "127.0.0.1"
        assert "hostlo" not in dep.plugin_state

    def test_remove_pod_removes_hostlo(self, cluster):
        host, vmm, orch, _ = cluster
        dep = orch.deploy_pod(self.split_pod(), network="hostlo",
                              allow_split=True)
        tap = dep.plugin_state["hostlo"].tap
        orch.remove_pod("p")
        assert tap.name not in host.ns.devices


class TestOverlayDeployment:
    def split_pod(self, name="p"):
        return simple_pod(name, "memcached", containers=3, cpu=2, memory_gb=1)

    def test_cross_vm_path_uses_vxlan(self, cluster):
        _, _, orch, _ = cluster
        dep = orch.deploy_pod(self.split_pod(), network="overlay",
                              allow_split=True)
        nodes = {c: dep.placement.node_of(c) for c in dep.containers}
        c_src = "c0"
        c_dst = next(c for c, n in nodes.items() if n != nodes[c_src])
        path = resolve_path(
            dep.namespace_of(c_src), dep.intra_address(c_dst), 11211
        )
        assert path.count("vxlan_encap") == 1
        assert path.jitter_class == "overlay"

    def test_overlay_path_longer_than_hostlo(self, cluster):
        _, _, orch, _ = cluster
        ov = orch.deploy_pod(self.split_pod("pov"), network="overlay",
                             allow_split=True)
        # fresh cluster for hostlo to keep placements comparable
        host2 = PhysicalHost(Environment())
        vmm2 = Vmm(host2)
        orch2 = Orchestrator(vmm2)
        for i in range(2):
            orch2.enroll(vmm2.create_vm(f"vm{i}", vcpus=5, memory_gb=4))
        hlo = orch2.deploy_pod(self.split_pod("phlo"), network="hostlo",
                               allow_split=True)

        def cross_path(dep):
            nodes = {c: dep.placement.node_of(c) for c in dep.containers}
            c_src = "c0"
            c_dst = next(c for c, n in nodes.items() if n != nodes[c_src])
            return resolve_path(
                dep.namespace_of(c_src), dep.intra_address(c_dst), 11211
            )

        assert len(cross_path(ov).stages) > len(cross_path(hlo).stages)


class TestPluginRegistry:
    def test_unknown_plugin_rejected(self, cluster):
        _, _, orch, _ = cluster
        with pytest.raises(ConfigurationError):
            orch.deploy_pod(two_tier_pod(), network="quantum")

    def test_duplicate_plugin_rejected(self, cluster):
        _, _, orch, _ = cluster
        from repro.orchestrator.plugins import NatPlugin

        with pytest.raises(ConfigurationError):
            orch.register_plugin(NatPlugin())

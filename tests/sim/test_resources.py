"""Unit tests for Store and CpuResource."""

import pytest

from repro.errors import SimulationError
from repro.sim import CpuResource, Environment, Store


class TestStore:
    def test_put_then_get(self):
        env = Environment()
        store = Store(env)
        got = []

        def proc():
            yield store.put("x")
            item = yield store.get()
            got.append(item)

        env.process(proc())
        env.run()
        assert got == ["x"]

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        got = []

        def consumer():
            item = yield store.get()
            got.append((env.now, item))

        def producer():
            yield env.timeout(3.0)
            yield store.put("late")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert got == [(3.0, "late")]

    def test_fifo_order(self):
        env = Environment()
        store = Store(env)
        got = []

        def producer():
            for i in range(5):
                yield store.put(i)

        def consumer():
            for _ in range(5):
                item = yield store.get()
                got.append(item)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert got == [0, 1, 2, 3, 4]

    def test_capacity_blocks_putter(self):
        env = Environment()
        store = Store(env, capacity=1)
        log = []

        def producer():
            yield store.put("a")
            log.append(("put-a", env.now))
            yield store.put("b")
            log.append(("put-b", env.now))

        def consumer():
            yield env.timeout(2.0)
            yield store.get()

        env.process(producer())
        env.process(consumer())
        env.run()
        assert ("put-a", 0.0) in log
        assert ("put-b", 2.0) in log

    def test_zero_capacity_rejected(self):
        env = Environment()
        with pytest.raises(SimulationError):
            Store(env, capacity=0)

    def test_len_and_items(self):
        env = Environment()
        store = Store(env)

        def proc():
            yield store.put(1)
            yield store.put(2)

        env.process(proc())
        env.run()
        assert len(store) == 2
        assert store.items == (1, 2)

    def test_waiting_getters_fifo(self):
        env = Environment()
        store = Store(env)
        got = []

        def getter(tag):
            item = yield store.get()
            got.append((tag, item))

        def putter():
            yield env.timeout(1.0)
            yield store.put("first")
            yield store.put("second")

        env.process(getter("g1"))
        env.process(getter("g2"))
        env.process(putter())
        env.run()
        assert got == [("g1", "first"), ("g2", "second")]


class TestCpuResource:
    def test_single_job_duration(self):
        env = Environment()
        cpu = CpuResource(env, cores=1, freq_hz=1000.0)

        def proc():
            yield cpu.execute(500.0)  # 0.5 s at 1 kHz

        env.process(proc())
        env.run()
        assert env.now == pytest.approx(0.5)

    def test_jobs_queue_on_one_core(self):
        env = Environment()
        cpu = CpuResource(env, cores=1, freq_hz=1000.0)
        finished = []

        def submit(tag):
            yield cpu.execute(1000.0)
            finished.append((tag, env.now))

        env.process(submit("a"))
        env.process(submit("b"))
        env.run()
        assert finished == [("a", pytest.approx(1.0)), ("b", pytest.approx(2.0))]

    def test_two_cores_run_in_parallel(self):
        env = Environment()
        cpu = CpuResource(env, cores=2, freq_hz=1000.0)
        finished = []

        def submit(tag):
            yield cpu.execute(1000.0)
            finished.append((tag, env.now))

        env.process(submit("a"))
        env.process(submit("b"))
        env.run()
        assert [t for _, t in finished] == [pytest.approx(1.0), pytest.approx(1.0)]

    def test_busy_seconds_per_account(self):
        env = Environment()
        cpu = CpuResource(env, cores=1, freq_hz=1000.0)

        def proc():
            yield cpu.execute(100.0, account="usr")
            yield cpu.execute(300.0, account="sys")
            yield cpu.execute(100.0, account="usr")

        env.process(proc())
        env.run()
        assert cpu.busy_seconds("usr") == pytest.approx(0.2)
        assert cpu.busy_seconds("sys") == pytest.approx(0.3)
        assert cpu.busy_seconds() == pytest.approx(0.5)

    def test_breakdown_returns_copy(self):
        env = Environment()
        cpu = CpuResource(env, cores=1, freq_hz=1000.0)

        def proc():
            yield cpu.execute(100.0, account="usr")

        env.process(proc())
        env.run()
        snap = cpu.breakdown()
        snap["usr"] = 999.0
        assert cpu.busy_seconds("usr") == pytest.approx(0.1)

    def test_utilization(self):
        env = Environment()
        cpu = CpuResource(env, cores=2, freq_hz=1000.0)

        def proc():
            yield cpu.execute(1000.0)

        env.process(proc())
        env.run()
        # 1 core busy for 1 s out of 2 cores over 1 s => 50 %
        assert cpu.utilization() == pytest.approx(0.5)

    def test_reset_accounting(self):
        env = Environment()
        cpu = CpuResource(env, cores=1, freq_hz=1000.0)

        def proc():
            yield cpu.execute(1000.0)
            cpu.reset_accounting()
            yield cpu.execute(500.0, account="sys")

        env.process(proc())
        env.run()
        assert cpu.busy_seconds() == pytest.approx(0.5)
        assert cpu.busy_seconds("sys") == pytest.approx(0.5)
        assert cpu.utilization() == pytest.approx(1.0)

    def test_mean_wait_counts_queueing(self):
        env = Environment()
        cpu = CpuResource(env, cores=1, freq_hz=1000.0)

        def proc(tag):
            yield cpu.execute(1000.0)

        env.process(proc("a"))
        env.process(proc("b"))
        env.run()
        # job b waited 1 s; mean over two jobs = 0.5 s
        assert cpu.mean_wait() == pytest.approx(0.5)

    def test_zero_cycles_completes_immediately(self):
        env = Environment()
        cpu = CpuResource(env, cores=1, freq_hz=1000.0)

        def proc():
            yield cpu.execute(0.0)
            return env.now

        p = env.process(proc())
        env.run()
        assert p.value == 0.0

    def test_negative_cycles_rejected(self):
        env = Environment()
        cpu = CpuResource(env)
        with pytest.raises(SimulationError):
            cpu.execute(-1.0)

    def test_invalid_construction(self):
        env = Environment()
        with pytest.raises(SimulationError):
            CpuResource(env, cores=0)
        with pytest.raises(SimulationError):
            CpuResource(env, freq_hz=0)

    def test_seconds_for(self):
        env = Environment()
        cpu = CpuResource(env, freq_hz=2.0e9)
        assert cpu.seconds_for(2.0e9) == pytest.approx(1.0)

    def test_queue_depth_and_busy_cores(self):
        env = Environment()
        cpu = CpuResource(env, cores=1, freq_hz=1000.0)
        cpu.execute(1000.0)
        cpu.execute(1000.0)
        cpu.execute(1000.0)
        assert cpu.busy_cores == 1
        assert cpu.queue_depth == 2
        env.run()
        assert cpu.busy_cores == 0
        assert cpu.queue_depth == 0

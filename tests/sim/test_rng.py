"""Unit tests for the RNG registry."""

import numpy as np

from repro.sim import RngRegistry
from repro.sim.rng import stable_hash


def test_same_seed_same_stream():
    a = RngRegistry(seed=7).stream("x").random(10)
    b = RngRegistry(seed=7).stream("x").random(10)
    assert np.array_equal(a, b)


def test_different_names_differ():
    reg = RngRegistry(seed=7)
    a = reg.stream("x").random(10)
    b = reg.stream("y").random(10)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = RngRegistry(seed=1).stream("x").random(10)
    b = RngRegistry(seed=2).stream("x").random(10)
    assert not np.array_equal(a, b)


def test_stream_cached():
    reg = RngRegistry(seed=3)
    assert reg.stream("s") is reg.stream("s")


def test_creation_order_does_not_matter():
    reg1 = RngRegistry(seed=5)
    reg1.stream("a")
    x1 = reg1.stream("b").random(5)

    reg2 = RngRegistry(seed=5)
    x2 = reg2.stream("b").random(5)  # no "a" created first
    assert np.array_equal(x1, x2)


def test_fork_decorrelates():
    reg = RngRegistry(seed=5)
    forked = reg.fork("salt")
    a = reg.stream("x").random(10)
    b = forked.stream("x").random(10)
    assert not np.array_equal(a, b)


def test_fork_deterministic():
    a = RngRegistry(seed=5).fork("salt").stream("x").random(5)
    b = RngRegistry(seed=5).fork("salt").stream("x").random(5)
    assert np.array_equal(a, b)


def test_stable_hash_is_stable():
    assert stable_hash("netperf") == stable_hash("netperf")
    assert stable_hash("a") != stable_hash("b")

"""Unit tests for the discrete-event engine and events."""

import pytest

from repro.errors import SimulationError
from repro.sim import AllOf, AnyOf, Environment, Event, Interrupt


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_start():
    env = Environment(initial_time=5.0)
    assert env.now == 5.0


def test_timeout_advances_clock():
    env = Environment()
    env.timeout(2.5)
    env.run()
    assert env.now == 2.5


def test_timeout_negative_delay_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1.0)


def test_run_until_time_stops_clock_exactly():
    env = Environment()
    env.timeout(10.0)
    env.run(until=3.0)
    assert env.now == 3.0


def test_run_until_past_time_rejected():
    env = Environment()
    env.run(until=5.0)
    with pytest.raises(SimulationError):
        env.run(until=1.0)


def test_step_on_empty_schedule_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_peek_empty_is_inf():
    env = Environment()
    assert env.peek() == float("inf")


def test_events_fire_in_time_order():
    env = Environment()
    order = []
    for delay in (3.0, 1.0, 2.0):
        tmo = env.timeout(delay, value=delay)
        tmo.callbacks.append(lambda ev: order.append(ev.value))
    env.run()
    assert order == [1.0, 2.0, 3.0]


def test_simultaneous_events_fifo_within_same_time():
    env = Environment()
    order = []
    for tag in "abc":
        tmo = env.timeout(1.0, value=tag)
        tmo.callbacks.append(lambda ev: order.append(ev.value))
    env.run()
    assert order == ["a", "b", "c"]


def test_process_runs_and_returns_value():
    env = Environment()

    def proc():
        yield env.timeout(1.0)
        yield env.timeout(2.0)
        return "done"

    p = env.process(proc())
    env.run()
    assert env.now == 3.0
    assert p.value == "done"


def test_process_receives_timeout_value():
    env = Environment()
    got = []

    def proc():
        value = yield env.timeout(1.0, value=42)
        got.append(value)

    env.process(proc())
    env.run()
    assert got == [42]


def test_process_waits_on_process():
    env = Environment()

    def child():
        yield env.timeout(2.0)
        return 7

    def parent():
        result = yield env.process(child())
        return result * 2

    p = env.process(parent())
    env.run()
    assert p.value == 14


def test_run_until_event_returns_value():
    env = Environment()

    def proc():
        yield env.timeout(1.5)
        return "payload"

    p = env.process(proc())
    assert env.run(until=p) == "payload"
    assert env.now == 1.5


def test_run_until_never_triggering_event_raises():
    env = Environment()
    ev = env.event()
    env.timeout(1.0)
    with pytest.raises(SimulationError):
        env.run(until=ev)


def test_event_succeed_once_only():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_requires_exception():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        ev.fail("not an exception")


def test_event_value_before_trigger_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        _ = ev.value


def test_failed_event_propagates_into_process():
    env = Environment()

    class Boom(Exception):
        pass

    def proc():
        ev = env.event()
        ev.fail(Boom("x"))
        try:
            yield ev
        except Boom:
            return "caught"

    p = env.process(proc())
    env.run()
    assert p.value == "caught"


def test_unhandled_process_exception_surfaces_at_run():
    env = Environment()

    def proc():
        yield env.timeout(1.0)
        raise ValueError("kaput")

    env.process(proc())
    with pytest.raises(ValueError, match="kaput"):
        env.run()


def test_process_yielding_non_event_raises():
    env = Environment()

    def proc():
        yield 42

    env.process(proc())
    with pytest.raises(SimulationError):
        env.run()


def test_yield_already_processed_event_resumes_immediately():
    env = Environment()

    def proc():
        tmo = env.timeout(1.0, value="early")
        yield env.timeout(2.0)  # let the first timeout get processed
        value = yield tmo  # already processed; must still resume us
        return value

    p = env.process(proc())
    env.run()
    assert p.value == "early"
    assert env.now == 2.0


def test_interrupt_raises_in_target_process():
    env = Environment()
    log = []

    def victim():
        try:
            yield env.timeout(100.0)
        except Interrupt as exc:
            log.append((env.now, exc.cause))

    def attacker(vproc):
        yield env.timeout(1.0)
        vproc.interrupt(cause="stop")

    v = env.process(victim())
    env.process(attacker(v))
    env.run()
    assert log == [(1.0, "stop")]
    assert not v.is_alive


def test_interrupt_dead_process_raises():
    env = Environment()

    def quick():
        yield env.timeout(0.1)

    p = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_allof_collects_all_values():
    env = Environment()

    def proc():
        t1 = env.timeout(1.0, value="a")
        t2 = env.timeout(2.0, value="b")
        results = yield AllOf(env, [t1, t2])
        return sorted(results.values())

    p = env.process(proc())
    env.run()
    assert p.value == ["a", "b"]
    assert env.now == 2.0


def test_anyof_triggers_on_first():
    env = Environment()

    def proc():
        t1 = env.timeout(1.0, value="fast")
        t2 = env.timeout(5.0, value="slow")
        results = yield AnyOf(env, [t1, t2])
        return list(results.values())

    p = env.process(proc())
    env.run(until=p)
    assert p.value == ["fast"]
    assert env.now == 1.0


def test_event_requires_same_environment():
    env1, env2 = Environment(), Environment()

    def proc():
        yield Event(env2)

    env1.process(proc())
    with pytest.raises(SimulationError):
        env1.run()


def test_active_process_visible_during_resume():
    env = Environment()
    seen = []

    def proc():
        yield env.timeout(1.0)
        seen.append(env.active_process)

    p = env.process(proc())
    env.run()
    assert seen == [p]
    assert env.active_process is None


def test_run_until_horizon_updates_tracer_after_heap_empties():
    # Regression: when the schedule empties before the horizon, the
    # clock jumps to the horizon and the installed tracer must jump
    # with it — otherwise events recorded right after run() carry a
    # stale timestamp.
    from repro import obs

    with obs.capture() as (tracer, _):
        env = Environment()
        env.timeout(1.0)  # exhausted well before the horizon
        env.run(until=5.0)
        assert env.now == 5.0
        assert tracer.now == 5.0
        span = tracer.event("test", "after-run")
        assert span is not None and span.start == 5.0

"""Property-based tests on the simulation kernel's invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import CpuResource, Environment, Store


class TestEventOrderingProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0),
                    min_size=1, max_size=40))
    def test_timeouts_fire_in_sorted_order(self, delays):
        env = Environment()
        fired = []
        for delay in delays:
            tmo = env.timeout(delay, value=delay)
            tmo.callbacks.append(lambda ev: fired.append(ev.value))
        env.run()
        assert fired == sorted(delays)
        assert env.now == max(delays)

    @given(st.lists(st.floats(min_value=0.001, max_value=10.0),
                    min_size=1, max_size=20))
    def test_sequential_process_time_is_the_sum(self, delays):
        env = Environment()

        def proc():
            for delay in delays:
                yield env.timeout(delay)

        env.process(proc())
        env.run()
        assert env.now == sum(delays) or abs(env.now - sum(delays)) < 1e-9

    @given(st.lists(st.floats(min_value=0.001, max_value=10.0),
                    min_size=1, max_size=20))
    def test_parallel_processes_finish_at_the_max(self, delays):
        env = Environment()

        def proc(delay):
            yield env.timeout(delay)

        for delay in delays:
            env.process(proc(delay))
        env.run()
        assert abs(env.now - max(delays)) < 1e-9


class TestStoreProperties:
    @given(st.lists(st.integers(), min_size=1, max_size=50))
    def test_fifo_preserved_for_any_sequence(self, items):
        env = Environment()
        store = Store(env)
        got = []

        def producer():
            for item in items:
                yield store.put(item)

        def consumer():
            for _ in items:
                value = yield store.get()
                got.append(value)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert got == items

    @given(st.lists(st.integers(), min_size=1, max_size=30),
           st.integers(min_value=1, max_value=5))
    def test_bounded_store_never_overfills(self, items, capacity):
        env = Environment()
        store = Store(env, capacity=capacity)
        max_seen = {"n": 0}

        def producer():
            for item in items:
                yield store.put(item)
                max_seen["n"] = max(max_seen["n"], len(store))

        def consumer():
            for _ in items:
                yield env.timeout(0.01)
                yield store.get()

        env.process(producer())
        env.process(consumer())
        env.run()
        assert max_seen["n"] <= capacity


class TestCpuConservation:
    @settings(max_examples=40)
    @given(st.lists(
        st.tuples(st.floats(min_value=1.0, max_value=1e6),
                  st.sampled_from(["usr", "sys", "soft"])),
        min_size=1, max_size=25,
    ), st.integers(min_value=1, max_value=4))
    def test_busy_seconds_equal_submitted_cycles(self, jobs, cores):
        """Work is conserved: total busy time == Σ cycles / freq,
        regardless of queueing and core count."""
        env = Environment()
        cpu = CpuResource(env, cores=cores, freq_hz=1e6)
        for cycles, account in jobs:
            cpu.execute(cycles, account=account)
        env.run()
        expected = sum(c for c, _ in jobs) / 1e6
        assert abs(cpu.busy_seconds() - expected) < 1e-9
        # Per-account sums also conserve.
        for account in ("usr", "sys", "soft"):
            exp = sum(c for c, a in jobs if a == account) / 1e6
            assert abs(cpu.busy_seconds(account) - exp) < 1e-9

    @settings(max_examples=30)
    @given(st.lists(st.floats(min_value=1.0, max_value=1e6),
                    min_size=1, max_size=20),
           st.integers(min_value=1, max_value=8))
    def test_makespan_bounds(self, cycles_list, cores):
        """Makespan is bounded below by work/cores and the longest job,
        and above by the serial sum."""
        env = Environment()
        cpu = CpuResource(env, cores=cores, freq_hz=1e6)
        for cycles in cycles_list:
            cpu.execute(cycles)
        env.run()
        total = sum(cycles_list) / 1e6
        longest = max(cycles_list) / 1e6
        assert env.now >= max(total / cores, longest) - 1e-9
        assert env.now <= total + 1e-9

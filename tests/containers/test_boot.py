"""Tests for the timed container boot pipeline (fig 8 machinery)."""

import numpy as np
import pytest

from repro.containers import ContainerEngine
from repro.containers.boot import BootTimer, validate_publish
from repro.errors import ConfigurationError
from repro.sim import Environment
from repro.virt import PhysicalHost, Vmm


def make_testbed(seed=0):
    env = Environment()
    host = PhysicalHost(env, seed=seed)
    vmm = Vmm(host)
    vm = vmm.create_vm("vm1")
    engine = ContainerEngine(vm)
    return env, host, vmm, vm, engine


class TestBootNat:
    def test_boot_produces_record(self):
        env, host, vmm, vm, engine = make_testbed()
        timer = BootTimer(env, vmm)
        proc = env.process(timer.boot_nat(engine, "c0", "alpine"))
        env.run()
        record = proc.value
        assert record.network_mode == "bridge"
        assert record.total_s > 0.2  # runtime init floor
        assert 0 < record.network_s < record.total_s
        assert engine.container("c0").is_running

    def test_rule_count_slows_later_boots(self):
        env, host, vmm, vm, engine = make_testbed()
        timer = BootTimer(env, vmm)

        def run_all():
            for i in range(12):
                yield env.process(
                    timer.boot_nat(engine, f"c{i}", "alpine",
                                   publish=[("tcp", 8000 + i, 80)])
                )

        env.process(run_all())
        env.run()
        nets = [r.network_s for r in timer.records]
        # Later containers see strictly more iptables rules on average.
        assert np.mean(nets[-4:]) > np.mean(nets[:4]) * 0.9


class TestBootBrFusion:
    def test_boot_produces_record(self):
        env, host, vmm, vm, engine = make_testbed()
        timer = BootTimer(env, vmm)
        proc = env.process(timer.boot_brfusion(engine, "c0", "alpine"))
        env.run()
        record = proc.value
        assert record.network_mode == "provided-nic"
        assert engine.container("c0").is_running
        # The hot-plug went through the QMP channel.
        assert len(vmm.qmp["vm1"].commands("device_add")) == 1

    def test_pod_gets_host_bridge_address(self):
        env, host, vmm, vm, engine = make_testbed()
        timer = BootTimer(env, vmm)
        proc = env.process(timer.boot_brfusion(engine, "c0", "alpine"))
        env.run()
        cont = engine.container("c0")
        nic = cont.netns.device("eth1")
        assert nic.primary_ip in host.bridge_network("virbr0")


class TestBootDistributions:
    def test_brfusion_wins_most_quantiles(self):
        """Fig 8a: ~75 % of start-up times slightly better with BrFusion."""
        env, host, vmm, vm, engine = make_testbed(seed=42)
        timer = BootTimer(env, vmm)
        runs = 60

        def nat_runs():
            for i in range(runs):
                yield env.process(
                    timer.boot_nat(engine, f"nat{i}", "alpine")
                )
                engine.remove_container(f"nat{i}")

        env.process(nat_runs())
        env.run()
        nat_times = np.array(timer.totals("bridge"))

        def brf_runs():
            for i in range(runs):
                yield env.process(
                    timer.boot_brfusion(engine, f"brf{i}", "alpine")
                )

        env.process(brf_runs())
        env.run()
        brf_times = np.array(timer.totals("provided-nic"))

        better = sum(
            np.quantile(brf_times, q) < np.quantile(nat_times, q)
            for q in (0.10, 0.25, 0.50, 0.75)
        )
        assert better >= 3  # wins at least through the 75th percentile

    def test_means_are_comparable(self):
        env, host, vmm, vm, engine = make_testbed(seed=7)
        timer = BootTimer(env, vmm)

        def runs():
            for i in range(30):
                yield env.process(timer.boot_nat(engine, f"n{i}", "alpine"))
                engine.remove_container(f"n{i}")
            for i in range(30):
                yield env.process(timer.boot_brfusion(engine, f"b{i}", "alpine"))

        env.process(runs())
        env.run()
        nat_mean = np.mean(timer.totals("bridge"))
        brf_mean = np.mean(timer.totals("provided-nic"))
        assert 0.7 < brf_mean / nat_mean < 1.1  # "no overhead" claim


class TestValidatePublish:
    def test_good_spec_passes(self):
        validate_publish([("tcp", 8080, 80), ("udp", 53, 53)])

    def test_bad_specs_rejected(self):
        with pytest.raises(ConfigurationError):
            validate_publish([("tcp", 8080)])  # type: ignore[list-item]
        with pytest.raises(ConfigurationError):
            validate_publish([("icmp", 1, 1)])
        with pytest.raises(ConfigurationError):
            validate_publish([("tcp", 0, 80)])

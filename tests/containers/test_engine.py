"""Tests for the container engine, overlay networks and images."""

import pytest

from repro.containers import ContainerEngine, IMAGES, OverlayNetwork
from repro.containers.image import ContainerImage, get_image
from repro.errors import ContainerError, TopologyError
from repro.net import resolve_path
from repro.net.addresses import cidr, ip
from repro.sim import Environment
from repro.virt import PhysicalHost, Vmm


@pytest.fixture
def setup():
    host = PhysicalHost(Environment())
    vmm = Vmm(host)
    vm = vmm.create_vm("vm1")
    engine = ContainerEngine(vm)
    return host, vmm, vm, engine


class TestImages:
    def test_registry_has_benchmark_images(self):
        for name in ("netperf", "memcached", "nginx", "kafka"):
            assert name in IMAGES

    def test_get_image_unknown(self):
        with pytest.raises(ContainerError):
            get_image("doom")

    def test_image_validation(self):
        with pytest.raises(ContainerError):
            ContainerImage("x", size_mb=0, app_start_s=1)
        with pytest.raises(ContainerError):
            ContainerImage("x", size_mb=1, app_start_s=0)


class TestLifecycle:
    def test_create_container(self, setup):
        _, _, vm, engine = setup
        cont = engine.create_container("web", "nginx")
        assert cont.netns.domain == vm.domain
        assert cont.state == "created"
        assert engine.container("web") is cont

    def test_duplicate_name_rejected(self, setup):
        _, _, _, engine = setup
        engine.create_container("web", "nginx")
        with pytest.raises(ContainerError):
            engine.create_container("web", "nginx")

    def test_unknown_container(self, setup):
        _, _, _, engine = setup
        with pytest.raises(ContainerError):
            engine.container("ghost")

    def test_running_count(self, setup):
        _, _, _, engine = setup
        cont = engine.create_container("web", "nginx")
        assert engine.running_count == 0
        cont.mark_running(0.0)
        assert engine.running_count == 1


class TestBridgeNetwork:
    def test_wiring_and_address(self, setup):
        host, _, vm, engine = setup
        cont = engine.create_container("web", "nginx")
        address = engine.setup_bridge_network(cont, publish=[("tcp", 8080, 80)])
        assert address == ip("172.17.0.2")
        assert vm.ns.device("docker0").owns_ip(ip("172.17.0.1"))
        assert vm.ns.netfilter.active

    def test_published_port_path_from_client(self, setup):
        host, _, vm, engine = setup
        cont = engine.create_container("web", "nginx")
        engine.setup_bridge_network(cont, publish=[("tcp", 8080, 80)])
        client = host.create_attached_namespace("client", domain="client")
        path = resolve_path(client, vm.primary_nic.primary_ip, 8080)
        assert path.count("netfilter_nat") == 1
        assert path.stage_names().count("bridge_fwd") == 2

    def test_double_wire_rejected(self, setup):
        _, _, _, engine = setup
        cont = engine.create_container("web", "nginx")
        engine.setup_bridge_network(cont)
        with pytest.raises(ContainerError):
            engine.setup_bridge_network(cont)

    def test_sequential_addresses(self, setup):
        _, _, _, engine = setup
        a = engine.setup_bridge_network(engine.create_container("c1", "alpine"))
        b = engine.setup_bridge_network(engine.create_container("c2", "alpine"))
        assert a != b

    def test_remove_container_cleans_bridge_and_rules(self, setup):
        _, _, vm, engine = setup
        cont = engine.create_container("web", "nginx")
        engine.setup_bridge_network(cont, publish=[("tcp", 8080, 80)])
        rules_before = vm.ns.netfilter.rule_count
        engine.remove_container("web")
        assert vm.ns.netfilter.rule_count < rules_before
        assert engine.bridge.ports == []


class TestAdoptNic:
    def test_brfusion_adoption(self, setup):
        host, vmm, vm, engine = setup
        cont = engine.create_container("pod", "netperf")
        nic = vmm.add_nic(vm)
        network = host.bridge_network("virbr0")
        address = host.allocate_address("virbr0")
        engine.adopt_nic(cont, nic, address, network, gateway=network.host(1))
        assert cont.network_mode == "provided-nic"
        assert nic.namespace is cont.netns
        client = host.create_attached_namespace("client", domain="client")
        path = resolve_path(client, address, 80)
        assert path.count("netfilter_nat") == 0

    def test_hostlo_adoption_sets_mode(self, setup):
        host, vmm, vm, engine = setup
        vm2 = vmm.create_vm("vm2")
        handle = vmm.create_hostlo("hlo", [vm, vm2])
        cont = engine.create_container("frag", "memcached")
        net = cidr("10.88.0.0/24")
        engine.adopt_nic(cont, handle.endpoints["vm1"], net.host(2), net,
                         default_route=False)
        assert cont.network_mode == "hostlo"

    def test_foreign_nic_rejected(self, setup):
        host, vmm, vm, engine = setup
        vm2 = vmm.create_vm("vm2")
        nic = vmm.add_nic(vm2)
        cont = engine.create_container("pod", "netperf")
        with pytest.raises(TopologyError):
            engine.adopt_nic(cont, nic, ip("192.168.122.77"),
                             host.bridge_network("virbr0"))


class TestPodNamespace:
    def test_two_containers_share_pod_ns(self, setup):
        _, _, vm, engine = setup
        pod_ns = vm.create_namespace("pod1")
        c1 = engine.create_container("app", "memcached", netns=pod_ns)
        c2 = engine.create_container("sidecar", "memtier", netns=pod_ns)
        assert c1.netns is c2.netns
        path = resolve_path(pod_ns, ip("127.0.0.1"), 11211)
        assert "loopback_xmit" in path.stage_names()


class TestOverlay:
    def test_cross_vm_overlay_path(self, setup):
        host, vmm, vm1, engine1 = setup
        vm2 = vmm.create_vm("vm2")
        engine2 = ContainerEngine(vm2)
        overlay = OverlayNetwork("ov0", cidr("10.0.9.0/24"), vni=256)
        c1 = engine1.create_container("a", "memcached")
        c2 = engine2.create_container("b", "memtier")
        addr1 = overlay.connect(vm1, c1)
        addr2 = overlay.connect(vm2, c2)
        assert addr1 != addr2
        path = resolve_path(c1.netns, addr2, 11211)
        assert path.count("vxlan_encap") == 1
        assert path.count("vxlan_decap") == 1
        assert path.stages[-1].domain == "vm:vm2"

    def test_same_vm_overlay_stays_local(self, setup):
        host, vmm, vm1, engine1 = setup
        overlay = OverlayNetwork("ov0", cidr("10.0.9.0/24"), vni=256)
        c1 = engine1.create_container("a", "alpine")
        c2 = engine1.create_container("b", "alpine")
        addr1 = overlay.connect(vm1, c1)
        addr2 = overlay.connect(vm1, c2)
        path = resolve_path(c1.netns, addr2, 80)
        assert path.count("vxlan_encap") == 0

    def test_three_vm_overlay_routes_correctly(self, setup):
        host, vmm, vm1, engine1 = setup
        vm2, vm3 = vmm.create_vm("vm2"), vmm.create_vm("vm3")
        engine2, engine3 = ContainerEngine(vm2), ContainerEngine(vm3)
        overlay = OverlayNetwork("ov0", cidr("10.0.9.0/24"), vni=256)
        a1 = overlay.connect(vm1, engine1.create_container("a", "alpine"))
        a2 = overlay.connect(vm2, engine2.create_container("b", "alpine"))
        a3 = overlay.connect(vm3, engine3.create_container("c", "alpine"))
        path = resolve_path(engine1.container("a").netns, a3, 80)
        assert path.stages[-1].domain == "vm:vm3"
        path = resolve_path(engine3.container("c").netns, a2, 80)
        assert path.stages[-1].domain == "vm:vm2"

    def test_double_attach_rejected(self, setup):
        _, _, vm1, _ = setup
        overlay = OverlayNetwork("ov0", cidr("10.0.9.0/24"), vni=256)
        overlay.attach_vm(vm1)
        with pytest.raises(TopologyError):
            overlay.attach_vm(vm1)

"""The write-ahead job journal: framing, replay, rotation, faults."""

import pytest

from repro import faults
from repro.errors import ConfigurationError, ServiceError
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.service.journal import (
    ACCEPTED,
    DISPATCHED,
    DONE,
    JobJournal,
    JournalConfig,
    JournalWriteError,
    _frame,
)
from repro.sim import RngRegistry


def journal(tmp_path, **config_kwargs):
    defaults = {"fsync": "never"}  # tests don't need real durability
    return JobJournal(tmp_path / "journal",
                      JournalConfig(**{**defaults, **config_kwargs}))


def envelope(job_id, **extra):
    return {"id": job_id, "key": f"sleep:0.0:{job_id}", "kind": "sleep",
            "payload": {"label": job_id}, "client": "t", "priority": 0,
            **extra}


class TestConfig:
    def test_bad_fsync_mode(self):
        with pytest.raises(ConfigurationError, match="fsync"):
            JournalConfig(fsync="sometimes")

    def test_bad_bounds(self):
        with pytest.raises(ConfigurationError):
            JournalConfig(batch_records=0)
        with pytest.raises(ConfigurationError):
            JournalConfig(rotate_records=1)

    def test_unknown_record_type_is_refused(self, tmp_path):
        with pytest.raises(ServiceError, match="record type"):
            journal(tmp_path).append("exploded", id="j1")


class TestReplay:
    def test_roundtrip_tracks_liveness(self, tmp_path):
        j = journal(tmp_path)
        j.append(ACCEPTED, **envelope("j1"))
        j.append(ACCEPTED, **envelope("j2"))
        j.append(DISPATCHED, id="j1", attempt=1)
        j.append(DONE, id="j1", key="k", cache_hit=False)
        j.close()

        state = journal(tmp_path).replay()
        assert set(state.live) == {"j2"}  # dispatched-not-done stays live
        assert state.live["j2"]["payload"] == {"label": "j2"}
        assert state.terminal == {"j1": DONE}
        assert not state.clean
        assert state.records == 4
        assert state.torn_records == state.corrupt_records == 0

    def test_clean_marker_empties_live(self, tmp_path):
        j = journal(tmp_path)
        j.append(ACCEPTED, **envelope("j1"))
        j.append(DONE, id="j1")
        j.close(mark_clean=True)

        state = journal(tmp_path).replay()
        assert state.clean and state.live == {}

    def test_activity_after_marker_reopens(self, tmp_path):
        j = journal(tmp_path)
        j.mark_clean()
        j.append(ACCEPTED, **envelope("j1"))
        j.close()

        state = journal(tmp_path).replay()
        assert not state.clean
        assert set(state.live) == {"j1"}

    def test_torn_tail_is_truncated_and_counted(self, tmp_path):
        j = journal(tmp_path)
        j.append(ACCEPTED, **envelope("j1"))
        j.close()
        segment = j.active_segment
        good = segment.read_bytes()
        torn = _frame({"t": ACCEPTED, "schema": 1, "id": "j2"})[:-7]
        segment.write_bytes(good + torn)  # the write a crash interrupted

        fresh = journal(tmp_path)
        state = fresh.replay()
        assert set(state.live) == {"j1"}
        assert state.torn_records == 1
        assert segment.read_bytes() == good  # tail gone from disk
        # The next append lands on a clean record boundary.
        fresh.append(ACCEPTED, **envelope("j3"))
        fresh.close()
        again = journal(tmp_path).replay()
        assert set(again.live) == {"j1", "j3"}
        assert again.torn_records == 0

    def test_corrupt_midstream_record_is_skipped(self, tmp_path):
        j = journal(tmp_path)
        j.append(ACCEPTED, **envelope("j1"))
        j.append(ACCEPTED, **envelope("j2"))
        j.close()
        segment = j.active_segment
        lines = segment.read_bytes().splitlines(keepends=True)
        lines[0] = b"deadbeef " + lines[0].split(b" ", 1)[1]  # bad CRC
        segment.write_bytes(b"".join(lines))

        state = journal(tmp_path).replay()
        assert set(state.live) == {"j2"}  # the good record after survives
        assert state.corrupt_records == 1
        assert state.torn_records == 0

    def test_empty_directory_replays_empty(self, tmp_path):
        state = journal(tmp_path).replay()
        assert state.live == {} and state.records == 0
        assert state.segments == 0


class TestRotation:
    def test_auto_rotation_compacts_to_live_jobs(self, tmp_path):
        j = journal(tmp_path, rotate_records=8)
        for i in range(6):
            j.append(ACCEPTED, **envelope(f"j{i}"))
        for i in range(4):
            j.append(DONE, id=f"j{i}")
        j.close()
        # 10 appends crossed the threshold: one segment, only live rows
        # (the 4 terminal jobs at rotation time compacted away).
        segments = sorted(j.root.glob("seg-*.jsonl"))
        assert len(segments) == 1
        state = journal(tmp_path).replay()
        assert set(state.live) == {"j4", "j5"}
        assert state.records < 10  # compaction dropped terminal history

    def test_explicit_rotate_with_snapshot(self, tmp_path):
        j = journal(tmp_path)
        j.append(ACCEPTED, **envelope("j1"))
        before = j.active_segment
        j.rotate(live=[envelope("j9")])
        assert j.active_segment != before
        assert not before.exists()
        state = j.replay()
        assert set(state.live) == {"j9"}
        j.close()

    def test_rotation_preserves_buffered_appends(self, tmp_path):
        """Regression: rotate() replays from disk, so appends still in
        the stdio buffer must be flushed first or they vanish."""
        j = journal(tmp_path, batch_records=100)
        j.append(ACCEPTED, **envelope("j1"))
        j.rotate()  # live=None: derived by replaying the segments
        state = j.replay()
        assert set(state.live) == {"j1"}
        j.close()


class TestDiskFullFault:
    def test_injected_enospc_raises_and_counts(self, tmp_path):
        j = journal(tmp_path)
        rng = RngRegistry(3)
        inj = FaultInjector(
            FaultPlan(specs=(FaultSpec(kind="service.disk_full"),)),
            rng.stream("faults"),
        )
        with faults.use(inj):
            with pytest.raises(JournalWriteError, match="no space"):
                j.append(ACCEPTED, **envelope("j1"))
        assert j.write_errors == 1
        # The fault gone, the journal keeps working.
        j.append(ACCEPTED, **envelope("j2"))
        j.close()
        assert set(journal(tmp_path).replay().live) == {"j2"}

    def test_targeted_segment_glob(self, tmp_path):
        j = journal(tmp_path)
        rng = RngRegistry(3)
        inj = FaultInjector(
            FaultPlan(specs=(
                FaultSpec(kind="service.disk_full", target="seg-999*"),
            )),
            rng.stream("faults"),
        )
        with faults.use(inj):  # targets a segment we never write
            j.append(ACCEPTED, **envelope("j1"))
        assert j.write_errors == 0
        j.close()

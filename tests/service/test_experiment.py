"""The ``service`` harness experiment's fast lanes, as regressions."""

import time

from repro.service.experiment import _admission_lane


def test_admission_lane_rejects_both_ways_and_tears_down_fast():
    """The lane cancels running holds and stops the instance in the
    same breath — the exact sequence that once wedged teardown for the
    full 30s join timeout."""
    start = time.perf_counter()
    row = _admission_lane()
    elapsed = time.perf_counter() - start
    assert row["rejected_capacity"] == 1
    assert row["rejected_quota"] == 1
    assert row["retry_after_ok"] is True
    assert elapsed < 10.0

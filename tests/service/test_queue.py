"""Admission policy and shard routing/executors."""

import asyncio
import time

import pytest

from repro.errors import AdmissionError, ConfigurationError
from repro.service.queue import AdmissionController
from repro.service.shards import (
    JobExecutionError,
    ShardRouter,
    ThreadExecutor,
    WorkerCrashError,
    make_executor,
)


class TestAdmission:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdmissionController(capacity=0)
        with pytest.raises(ConfigurationError):
            AdmissionController(per_client_quota=0)
        with pytest.raises(ConfigurationError):
            AdmissionController(retry_after_s=0.0)

    def test_admits_under_both_bounds(self):
        AdmissionController(capacity=4, per_client_quota=2).admit(
            "a", backlog=3, client_active=1
        )

    def test_capacity_rejection(self):
        controller = AdmissionController(capacity=2, per_client_quota=2)
        with pytest.raises(AdmissionError) as excinfo:
            controller.admit("a", backlog=2, client_active=0)
        assert excinfo.value.reason == "capacity"
        assert excinfo.value.retry_after_s > 0

    def test_quota_rejection(self):
        controller = AdmissionController(capacity=10, per_client_quota=2)
        with pytest.raises(AdmissionError) as excinfo:
            controller.admit("chatty", backlog=3, client_active=2)
        assert excinfo.value.reason == "quota"

    def test_retry_after_scales_with_overload(self):
        controller = AdmissionController(capacity=4, retry_after_s=0.5)
        at_line = controller._hint(4)
        deep = controller._hint(40)
        assert at_line == pytest.approx(0.5)
        assert deep == pytest.approx(2.0)  # capped at 4x


class TestShardRouter:
    def test_deterministic_and_in_range(self):
        router = ShardRouter(4)
        keys = [f"job-{i}" for i in range(200)]
        first = [router.shard_for(k) for k in keys]
        assert first == [router.shard_for(k) for k in keys]
        assert all(0 <= shard < 4 for shard in first)

    def test_spreads_load(self):
        router = ShardRouter(4)
        shards = {router.shard_for(f"job-{i}") for i in range(100)}
        assert shards == {0, 1, 2, 3}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ShardRouter(0)


def _boom():
    raise ValueError("deterministic bug")


def _slow():
    time.sleep(3.0)
    return "late"


def run_async(coro):
    """``asyncio.run`` minus ``shutdown_default_executor`` — that
    shutdown *joins* abandoned job threads, which is exactly the wait
    the thread executor's abandonment semantics avoid."""
    loop = asyncio.new_event_loop()
    try:
        return loop.run_until_complete(coro)
    finally:
        loop.close()


class TestThreadExecutor:
    def test_runs_and_returns(self):
        async def go():
            return await ThreadExecutor().run(lambda a, b: a + b, (2, 3))

        assert run_async(go()) == 5

    def test_in_job_exception_is_execution_error(self):
        async def go():
            await ThreadExecutor().run(_boom, ())

        with pytest.raises(JobExecutionError, match="deterministic bug"):
            run_async(go())

    def test_timeout_is_a_crash_and_returns_promptly(self):
        async def go():
            await ThreadExecutor(timeout_s=0.1).run(_slow, ())

        start = time.perf_counter()
        with pytest.raises(WorkerCrashError) as excinfo:
            run_async(go())
        assert excinfo.value.reason == "timeout"
        # The 3s thread is abandoned, not waited out.
        assert time.perf_counter() - start < 2.0


def test_make_executor_rejects_unknown_kind():
    with pytest.raises(ConfigurationError, match="thread"):
        make_executor("fork", timeout_s=1.0)

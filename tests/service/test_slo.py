"""The rolling-window SLO tracker and its multi-window burn alert."""

import pytest

from repro.errors import ConfigurationError
from repro.service.slo import (
    AVAILABILITY,
    LATENCY,
    SloConfig,
    SloTracker,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def tick(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


def tracker(clock, **overrides) -> SloTracker:
    config = SloConfig(**{
        "availability_target": 0.9, "latency_target": 0.9,
        "latency_target_s": 1.0, "short_window_s": 10.0,
        "long_window_s": 100.0, "burn_threshold": 2.0, "min_samples": 4,
        **overrides,
    })
    return SloTracker(config, clock=clock)


class TestConfig:
    @pytest.mark.parametrize("bad", [
        {"availability_target": 0.0}, {"availability_target": 1.0},
        {"latency_target": 1.5}, {"latency_target_s": 0.0},
        {"short_window_s": 0.0}, {"short_window_s": 20.0,
                                  "long_window_s": 10.0},
        {"burn_threshold": 0.0}, {"min_samples": 0},
    ])
    def test_rejects_nonsense(self, bad):
        with pytest.raises(ConfigurationError):
            SloConfig(**bad)

    def test_window_and_target_lookups(self):
        config = SloConfig(short_window_s=5.0, long_window_s=50.0)
        assert config.window_s("short") == 5.0
        assert config.window_s("long") == 50.0
        assert config.target(AVAILABILITY) == config.availability_target
        assert config.target(LATENCY) == config.latency_target
        with pytest.raises(ConfigurationError):
            config.window_s("medium")
        with pytest.raises(ConfigurationError):
            config.target("durability")


class TestBurnRate:
    def test_no_events_burns_nothing(self, clock):
        slo = tracker(clock)
        assert slo.burn_rate(AVAILABILITY, 10.0) == 0.0
        assert not slo.alerting(AVAILABILITY)

    def test_burn_is_error_rate_over_budget(self, clock):
        slo = tracker(clock)  # budget = 0.1
        for ok in (True, True, False, False):
            slo.record_completion(ok=ok)
        # Error rate 0.5 over a 0.1 budget: burning 5x schedule.
        assert slo.burn_rate(AVAILABILITY, 10.0) == pytest.approx(5.0)

    def test_shed_counts_against_availability_only(self, clock):
        slo = tracker(clock)
        slo.record_shed()
        assert slo.burn_rate(AVAILABILITY, 10.0) == pytest.approx(10.0)
        assert slo.burn_rate(LATENCY, 10.0) == 0.0

    def test_latency_verdict_only_for_timed_successes(self, clock):
        slo = tracker(clock)
        slo.record_completion(ok=True, latency_s=0.5)   # good
        slo.record_completion(ok=True, latency_s=2.0)   # over budget
        slo.record_completion(ok=False)                 # no latency verdict
        slo.record_completion(ok=True)                  # untimed: skipped
        assert slo.burn_rate(LATENCY, 10.0) == pytest.approx(5.0)

    def test_events_age_out_of_the_window(self, clock):
        slo = tracker(clock)
        slo.record_completion(ok=False)
        clock.tick(11.0)
        slo.record_completion(ok=True)
        assert slo.burn_rate(AVAILABILITY, 10.0) == 0.0
        # ...but the long window still remembers the failure.
        assert slo.burn_rate(AVAILABILITY, 100.0) == pytest.approx(5.0)

    def test_pruning_beyond_the_long_window(self, clock):
        slo = tracker(clock)
        slo.record_completion(ok=False)
        clock.tick(101.0)
        slo.record_completion(ok=True)
        assert len(slo._events) == 1
        assert slo.recorded == 2  # the lifetime counter never forgets


class TestAlerting:
    def test_fires_only_past_min_samples(self, clock):
        slo = tracker(clock)
        for _ in range(3):
            slo.record_completion(ok=False)
        assert not slo.alerting(AVAILABILITY)  # 3 < min_samples=4
        slo.record_completion(ok=False)
        assert slo.alerting(AVAILABILITY)

    def test_needs_both_windows_over_threshold(self, clock):
        slo = tracker(clock)
        # A long-ago burst: long window remembers, short window clean.
        for _ in range(6):
            slo.record_completion(ok=False)
        clock.tick(50.0)
        for _ in range(6):
            slo.record_completion(ok=True)
        assert slo.burn_rate(AVAILABILITY, 100.0) > slo.config.burn_threshold
        assert not slo.alerting(AVAILABILITY)

    def test_fires_then_clears_as_the_window_slides(self, clock):
        slo = tracker(clock)
        for _ in range(6):
            slo.record_completion(ok=False)
        assert slo.alerting(AVAILABILITY)
        clock.tick(11.0)  # failures leave the short window
        for _ in range(6):
            slo.record_completion(ok=True)
        assert not slo.alerting(AVAILABILITY)

    def test_describe_is_json_shaped(self, clock):
        slo = tracker(clock)
        slo.record_completion(ok=False)
        slo.record_completion(ok=True, latency_s=0.1)
        doc = slo.describe()
        assert doc["recorded"] == 2
        availability = doc["objectives"][AVAILABILITY]
        assert availability["events"] == 2 and availability["bad"] == 1
        assert set(availability["burn"]) == {"short", "long"}
        assert isinstance(availability["alerting"], bool)


class TestHealthCheck:
    def test_service_slo_violation_surfaces_objective_and_burns(self, clock):
        from repro.service.health import slo_within_budget

        slo = tracker(clock)
        for _ in range(6):
            slo.record_completion(ok=False)

        class FakeService:
            pass

        service = FakeService()
        service.slo = slo
        violations = slo_within_budget(service)
        assert [v.subject for v in violations] == [AVAILABILITY]
        assert violations[0].check == "service.slo"
        assert "burn" in violations[0].detail

    def test_service_without_tracker_is_vacuously_healthy(self):
        from repro.service.health import slo_within_budget

        class Bare:
            pass

        assert slo_within_budget(Bare()) == []

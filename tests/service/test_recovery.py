"""Crash recovery, graceful drain, deadline shedding, breakers —
the durable-service story end to end, in-process."""

import asyncio

import pytest

from repro import faults
from repro.errors import (
    AdmissionError,
    ServiceError,
    ServiceUnavailableError,
)
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.service import journal as journal_mod
from repro.service.core import ServiceConfig, TraceService
from repro.service.core import _crash_process  # noqa: F401 - patched
from repro.service.health import check_service
from repro.service.journal import JobJournal, JournalConfig
from repro.sim import RngRegistry
from tests.service.test_service import run_async, started, wait_terminal


def durable_service(tmp_path, **overrides) -> TraceService:
    config = ServiceConfig(**{
        "shards": 1, "executor": "thread",
        "journal_dir": tmp_path / "journal", "journal_fsync": "never",
        **overrides,
    })
    return TraceService(config)


class TestCrashRecovery:
    def test_queued_jobs_replay_and_finish_exactly_once(self, tmp_path):
        """Abrupt aclose() is the in-process stand-in for SIGKILL:
        queued jobs stay journaled in-flight and the next boot
        re-admits and finishes each exactly once."""
        async def crash():
            service = durable_service(tmp_path)
            await service.start()
            hold = service.submit("sleep", {"duration_s": 30.0,
                                            "label": "hold"})
            queued = [
                service.submit("sleep", {"duration_s": 0.0,
                                         "label": f"q{i}"},
                               client=f"c{i}")
                for i in range(3)
            ]
            await started(service, hold)
            await service.aclose()  # no drain: crash-like
            return [job.key for job in [hold, *queued]]

        async def reboot(keys):
            service = durable_service(tmp_path)
            await service.start()
            try:
                recovery = service.last_recovery
                assert recovery is not None and not recovery.clean
                assert len(recovery.live) == 4  # hold + 3 queued
                for job in service.jobs():
                    await wait_terminal(service, job, timeout_s=60.0)
                assert {job.key for job in service.jobs()} == set(keys)
                assert all(job.state == "done" and job.completions == 1
                           for job in service.jobs())
                assert check_service(service) == []
            finally:
                await service.aclose(drain=True)

        keys = run_async(crash())
        run_async(reboot(keys))

    def test_recovered_job_keeps_client_and_priority(self, tmp_path):
        async def crash():
            service = durable_service(tmp_path)
            await service.start()
            service.submit("sleep", {"duration_s": 30.0, "label": "hold"})
            # Long enough to still be in flight at the crash (its
            # priority puts it at the head of the shard queue).
            vip = service.submit("sleep", {"duration_s": 30.0,
                                           "label": "vip"},
                                 client="alice", priority=7,
                                 deadline_s=120.0)
            await started(service, vip)
            await service.aclose()

        async def reboot():
            service = durable_service(tmp_path)
            await service.start()
            try:
                vip = next(job for job in service.jobs()
                           if job.payload.get("label") == "vip")
                assert vip.client == "alice"
                assert vip.priority == 7
                assert vip.deadline_s == 120.0
            finally:
                await service.aclose()

        run_async(crash())
        run_async(reboot())

    def test_cache_complete_job_finishes_at_the_door(self, tmp_path):
        cache_dir = tmp_path / "cache"
        payload = {"seed": 5, "users": 300, "chunk": 64}

        async def warm():
            service = TraceService(ServiceConfig(
                shards=1, executor="thread", cache_dir=cache_dir,
            ))
            await service.start()
            try:
                job = service.submit("trace", payload)
                await wait_terminal(service, job)
                assert job.state == "done"
                return job.key
            finally:
                await service.aclose()

        key = run_async(warm())

        # Forge the journal a crashed instance would have left: the
        # trace job accepted but never finished.
        j = JobJournal(tmp_path / "journal", JournalConfig(fsync="never"))
        j.append(journal_mod.ACCEPTED, id="j00000", key=key, kind="trace",
                 payload=payload, client="crashed", priority=0)
        j.close()

        async def reboot():
            service = durable_service(tmp_path, cache_dir=cache_dir)
            await service.start()
            try:
                job = next(iter(service.jobs()))
                # Recovered through the cache probe: done before any
                # worker ran, exactly the warm-restart promise.
                assert job.state == "done" and job.cache_hit
                assert job.completions == 1
            finally:
                await service.aclose(drain=True)

        run_async(reboot())

    def test_torn_tail_never_wedges_a_boot(self, tmp_path):
        j = JobJournal(tmp_path / "journal", JournalConfig(fsync="never"))
        j.append(journal_mod.ACCEPTED, id="j00000", key="sleep:0.0:t",
                 kind="sleep", payload={"label": "t"}, client="c",
                 priority=0)
        j.close()
        segment = j.active_segment
        segment.write_bytes(segment.read_bytes() + b"5c5c5c5c {\"torn")

        async def reboot():
            service = durable_service(tmp_path)
            await service.start()
            try:
                assert service.last_recovery.torn_records == 1
                assert len(service.jobs()) == 1  # the good record lives
                for job in service.jobs():
                    await wait_terminal(service, job)
            finally:
                await service.aclose(drain=True)

        run_async(reboot())

    def test_kill_between_replay_and_readmission_loses_nothing(
            self, tmp_path, monkeypatch):
        """Regression: recovery must not compact the old segments away
        before the live jobs are re-journaled under their new ids — a
        kill inside that window used to lose every accepted in-flight
        job.  Simulated by dying on the first re-admission."""
        j = JobJournal(tmp_path / "journal", JournalConfig(fsync="never"))
        for i in range(2):
            j.append(journal_mod.ACCEPTED, id=f"j0000{i}",
                     key=f"sleep:0.0:k{i}", kind="sleep",
                     payload={"label": f"k{i}"}, client="c", priority=0)
        j.close()

        def killed(self, *args, **kwargs):
            raise KeyboardInterrupt  # stand-in for SIGKILL mid-recovery

        monkeypatch.setattr(TraceService, "submit", killed)

        async def boot_and_die():
            service = durable_service(tmp_path)
            with pytest.raises(KeyboardInterrupt):
                await service.start()
            for task in service.shard_tasks():
                task.cancel()
            await asyncio.gather(*service.shard_tasks(),
                                 return_exceptions=True)

        run_async(boot_and_die())

        state = JobJournal(tmp_path / "journal",
                           JournalConfig(fsync="never")).replay()
        assert len(state.live) == 2  # both envelopes still on disk

    def test_unknown_experiment_in_journal_is_skipped(self, tmp_path):
        j = JobJournal(tmp_path / "journal", JournalConfig(fsync="never"))
        j.append(journal_mod.ACCEPTED, id="j00000", key="gone@quick#s0",
                 kind="experiment",
                 payload={"experiment": "renamed-away"},
                 client="c", priority=0)
        j.close()

        async def reboot():
            service = durable_service(tmp_path)
            await service.start()
            try:
                assert service.jobs() == ()  # dropped, not fatal
            finally:
                await service.aclose(drain=True)

        run_async(reboot())


class TestGracefulDrain:
    def test_drain_finishes_inflight_and_refuses_new(self, tmp_path):
        async def go():
            service = durable_service(tmp_path)
            await service.start()
            job = service.submit("sleep", {"duration_s": 0.3,
                                           "label": "inflight"})
            await started(service, job)
            closer = asyncio.ensure_future(service.aclose(drain=True))
            await asyncio.sleep(0.05)
            assert service.draining
            with pytest.raises(ServiceUnavailableError,
                               match="draining") as excinfo:
                service.submit("sleep", {"label": "late"})
            assert excinfo.value.retry_after_s > 0
            await closer
            assert job.state == "done" and job.completions == 1

        run_async(go())

    def test_clean_shutdown_skips_replay(self, tmp_path):
        async def drain():
            service = durable_service(tmp_path)
            await service.start()
            job = service.submit("sleep", {"duration_s": 0.0,
                                           "label": "clean"})
            await wait_terminal(service, job)
            await service.aclose(drain=True)

        async def reboot():
            service = durable_service(tmp_path)
            await service.start()
            try:
                assert service.last_recovery.clean
                assert service.jobs() == ()  # nothing replayed
            finally:
                await service.aclose(drain=True)

        run_async(drain())
        run_async(reboot())

    def test_drain_deadline_caps_the_wait(self, tmp_path):
        async def go():
            service = durable_service(tmp_path)
            await service.start()
            job = service.submit("sleep", {"duration_s": 30.0,
                                           "label": "slow"})
            await started(service, job)
            async with asyncio.timeout(10.0):
                await service.aclose(drain=True, drain_timeout_s=0.2)
            # The job did not finish; the journal is dirty on purpose.
            assert job.state != "done"

        run_async(go())

        async def reboot():
            service = durable_service(tmp_path)
            await service.start()
            try:
                assert not service.last_recovery.clean
                assert len(service.last_recovery.live) == 1
                await service.cancel(next(iter(service.jobs())).id)
            finally:
                await service.aclose()

        run_async(reboot())


class TestDeadlineShedding:
    def test_unmeetable_deadline_is_shed(self, tmp_path):
        async def go():
            service = durable_service(tmp_path)
            await service.start()
            try:
                service._note_wall(2.0)  # EWMA evidence: jobs take ~2s
                hold = service.submit("sleep", {"duration_s": 30.0,
                                                "label": "hold"})
                await started(service, hold)
                with pytest.raises(AdmissionError) as excinfo:
                    service.submit("sleep", {"duration_s": 0.0,
                                             "label": "urgent"},
                                   client="b", deadline_s=0.5)
                assert excinfo.value.reason == "deadline"
                assert excinfo.value.retry_after_s > 0
                # A generous deadline still gets in.
                ok = service.submit("sleep", {"duration_s": 0.0,
                                              "label": "patient"},
                                    client="b", deadline_s=120.0)
                assert ok.state == "queued"
            finally:
                await service.aclose()

        run_async(go())

    def test_no_history_never_sheds(self, tmp_path):
        async def go():
            service = durable_service(tmp_path)
            await service.start()
            try:
                job = service.submit("sleep", {"label": "first"},
                                     deadline_s=0.001)
                await wait_terminal(service, job)
                assert job.state == "done"
            finally:
                await service.aclose(drain=True)

        run_async(go())

    def test_nonpositive_deadline_is_a_client_error(self, tmp_path):
        async def go():
            service = durable_service(tmp_path)
            await service.start()
            try:
                with pytest.raises(ServiceError, match="deadline"):
                    service.submit("sleep", {"label": "x"}, deadline_s=-1)
            finally:
                await service.aclose()

        run_async(go())


class TestBreakerIntegration:
    def test_crashy_shard_trips_then_probes_back(self, tmp_path):
        """A spawn worker that hard-exits trips the 1-failure breaker;
        admission sheds during the cooldown; the half-open probe (the
        requeued attempt, marker now present) closes it again."""
        marker = tmp_path / "crash-once"

        async def go():
            service = TraceService(ServiceConfig(
                shards=1, executor="spawn", job_timeout_s=120.0,
                breaker_failures=1, breaker_cooldown_s=0.4,
            ))
            await service.start()
            breaker = service.breakers[0]
            try:
                job = service.submit("sleep", {
                    "duration_s": 0.0, "label": "crashy",
                    "crash_unless": str(marker),
                })
                # Wait for the crash to trip the breaker.
                async with asyncio.timeout(60.0):
                    while breaker.state == "closed":
                        await asyncio.sleep(0.01)
                if breaker.shedding:
                    with pytest.raises(AdmissionError) as excinfo:
                        service.submit("sleep", {"label": "shed"},
                                       client="other")
                    assert excinfo.value.reason == "breaker"
                await wait_terminal(service, job, timeout_s=120.0)
                assert job.state == "done"
                assert breaker.state == "closed"  # probe succeeded
                assert any(new == "open" for _o, new in breaker.transitions)
                assert check_service(service) == []
            finally:
                await service.aclose()

        run_async(go())


class TestCancelAtOpenBreaker:
    def test_cancel_while_parked_at_open_breaker(self, tmp_path):
        """Regression: cancelling a job the shard loop had dequeued and
        parked behind an open breaker used to kill the loop (the
        popped cancel event raised KeyError) and could complete the
        job a second time; now the loop skips it, hands the probe slot
        back, and keeps serving."""
        async def go():
            service = durable_service(
                tmp_path, breaker_failures=1, breaker_cooldown_s=0.3)
            await service.start()
            breaker = service.breakers[0]
            try:
                # Submit, then trip the breaker before yielding to the
                # event loop: the shard loop dequeues the job and
                # parks at the gate.
                job = service.submit("sleep", {"duration_s": 0.0,
                                               "label": "parked"})
                breaker.record_failure()
                assert breaker.state == "open"
                await asyncio.sleep(0.05)  # loop dequeues, parks
                await service.cancel(job.id)
                assert job.state == "cancelled"
                await asyncio.sleep(0.4)  # cooldown elapses, gate opens
                assert not service.shard_tasks()[0].done()
                assert job.state == "cancelled" and job.completions == 1
                after = service.submit("sleep", {"duration_s": 0.0,
                                                 "label": "after"})
                await wait_terminal(service, after)
                assert after.state == "done"
                assert breaker.state == "closed"
                assert check_service(service) == []
            finally:
                await service.aclose(drain=True)

        run_async(go())


class TestCrashFault:
    def test_service_crash_fault_fires_at_dispatch(self, tmp_path,
                                                   monkeypatch):
        """The ``service.crash`` chaos kind calls the process-killer at
        a dispatch point; patched here to something observable."""
        from repro.service import core as core_mod

        crashes = []
        monkeypatch.setattr(core_mod, "_crash_process",
                            lambda: crashes.append(True))
        rng = RngRegistry(11)
        inj = FaultInjector(
            FaultPlan(specs=(
                FaultSpec(kind="service.crash", target="service-shard-*",
                          max_hits=1),
            )),
            rng.stream("faults"),
        )

        async def go():
            service = durable_service(tmp_path)
            await service.start()
            try:
                with faults.use(inj):
                    job = service.submit("sleep", {"label": "doomed"})
                    await wait_terminal(service, job, timeout_s=30.0)
                assert crashes == [True]
            finally:
                await service.aclose()

        run_async(go())

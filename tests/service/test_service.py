"""The service core: submission, dedupe, cancel, retry, cache, health."""

import asyncio
import json
import time

import pytest

from repro.errors import AdmissionError, ServiceError
from repro.service.core import ServiceConfig, TraceService
from repro.service.health import check_service
from repro.service.jobs import CANCELLED, DONE, FAILED, TERMINAL


def run_async(coro):
    """``asyncio.run`` minus ``shutdown_default_executor``: cancelled
    thread jobs are abandoned by design, and joining their threads on
    loop teardown would wait out every abandoned sleep."""
    loop = asyncio.new_event_loop()
    try:
        return loop.run_until_complete(coro)
    finally:
        loop.close()


async def wait_terminal(service, job, timeout_s=60.0):
    history, queue = service.subscribe(job.id)
    try:
        if any(e.event in ("done", "failed", "cancelled") for e in history):
            return
        async with asyncio.timeout(timeout_s):
            while True:
                event = await queue.get()
                if event.event in ("done", "failed", "cancelled"):
                    return
    finally:
        service.unsubscribe(job.id, queue)


async def started(service, job, timeout_s=30.0):
    async with asyncio.timeout(timeout_s):
        while job.state == "queued":
            await asyncio.sleep(0.005)


def thread_service(**overrides) -> TraceService:
    config = ServiceConfig(**{"shards": 1, "executor": "thread",
                              **overrides})
    return TraceService(config)


class TestLifecycle:
    def test_sleep_job_runs_to_done(self):
        async def go():
            service = thread_service()
            await service.start()
            try:
                job = service.submit("sleep", {"duration_s": 0.0,
                                               "label": "ok"})
                await wait_terminal(service, job)
                assert job.state == DONE
                assert job.completions == 1
                assert job.result is not None and job.result["wall_s"] >= 0
                doc = json.loads(job.result["result_json"])
                assert doc["rows"][0]["label"] == "ok"
                assert check_service(service) == []
            finally:
                await service.aclose()

        run_async(go())

    def test_event_log_orders_the_lifecycle(self):
        async def go():
            service = thread_service()
            await service.start()
            try:
                job = service.submit("sleep", {"label": "events"})
                await wait_terminal(service, job)
                names = [e.event for e in job.events]
                assert names == ["queued", "started", "done"]
                assert [e.seq for e in job.events] == [1, 2, 3]
            finally:
                await service.aclose()

        run_async(go())

    def test_submit_after_close_is_refused(self):
        async def go():
            service = thread_service()
            await service.start()
            await service.aclose()
            with pytest.raises(ServiceError, match="shutting down"):
                service.submit("sleep", {})

        run_async(go())

    def test_unknown_job_lookup(self):
        service = thread_service()
        with pytest.raises(ServiceError, match="unknown job"):
            service.job("j99999")


class TestDedupe:
    def test_duplicate_submit_attaches_to_the_twin(self):
        async def go():
            service = thread_service()
            await service.start()
            try:
                a = service.submit("sleep", {"duration_s": 0.2,
                                             "label": "twin"},
                                   client="one")
                b = service.submit("sleep", {"duration_s": 0.2,
                                             "label": "twin"},
                                   client="two")
                assert b is a  # same record, not a second run
                await wait_terminal(service, a)
                c = service.submit("sleep", {"duration_s": 0.2,
                                             "label": "twin"})
                assert c.id == a.id and c.state == DONE
                assert a.completions == 1
            finally:
                await service.aclose()

        run_async(go())

    def test_failed_jobs_may_be_resubmitted_fresh(self):
        async def go():
            service = thread_service()
            await service.start()
            try:
                a = service.submit("sleep", {"fail": True, "label": "f"})
                await wait_terminal(service, a)
                assert a.state == FAILED and a.error
                b = service.submit("sleep", {"fail": True, "label": "f"})
                assert b.id != a.id
                await wait_terminal(service, b)
            finally:
                await service.aclose()

        run_async(go())


class TestAdmission:
    def test_capacity_then_quota_rejections(self):
        async def go():
            service = thread_service(capacity=2, per_client_quota=1)
            await service.start()
            try:
                service.submit("sleep", {"duration_s": 3.0, "label": "h0"},
                               client="a")
                service.submit("sleep", {"duration_s": 3.0, "label": "h1"},
                               client="b")
                with pytest.raises(AdmissionError) as excinfo:
                    service.submit("sleep", {"label": "over"}, client="c")
                assert excinfo.value.reason == "capacity"
                assert excinfo.value.retry_after_s > 0
                counts = service.counts()
                assert counts["queued"] + counts["running"] == 2
            finally:
                await service.aclose()

        run_async(go())

    def test_quota_rejection_names_the_client(self):
        async def go():
            service = thread_service(capacity=8, per_client_quota=1)
            await service.start()
            try:
                service.submit("sleep", {"duration_s": 3.0, "label": "g"},
                               client="greedy")
                with pytest.raises(AdmissionError) as excinfo:
                    service.submit("sleep", {"label": "g2"},
                                   client="greedy")
                assert excinfo.value.reason == "quota"
                assert "greedy" in str(excinfo.value)
            finally:
                await service.aclose()

        run_async(go())

    def test_rejected_submissions_never_become_jobs(self):
        async def go():
            service = thread_service(capacity=1)
            await service.start()
            try:
                service.submit("sleep", {"duration_s": 3.0, "label": "h"})
                before = len(service.jobs())
                with pytest.raises(AdmissionError):
                    service.submit("sleep", {"label": "refused"})
                assert len(service.jobs()) == before
            finally:
                await service.aclose()

        run_async(go())


class TestCancel:
    def test_cancel_queued_job(self):
        async def go():
            service = thread_service()
            await service.start()
            try:
                hold = service.submit("sleep", {"duration_s": 3.0,
                                                "label": "hold"})
                queued = service.submit("sleep", {"duration_s": 3.0,
                                                  "label": "queued"},
                                        client="other")
                await started(service, hold)
                await service.cancel(queued.id)
                assert queued.state == CANCELLED
                assert queued.attempts == 0  # never reached a worker
                await service.cancel(hold.id)
            finally:
                await service.aclose()

        run_async(go())

    def test_cancel_while_running_is_prompt(self):
        async def go():
            service = thread_service()
            await service.start()
            try:
                job = service.submit("sleep", {"duration_s": 30.0,
                                               "label": "doomed"})
                await started(service, job)
                t0 = time.perf_counter()
                await service.cancel(job.id)
                await wait_terminal(service, job, timeout_s=5.0)
                elapsed = time.perf_counter() - t0
                assert job.state == CANCELLED
                assert elapsed < 5.0  # not the 30s the job asked for
                assert job.completions == 1
                assert check_service(service) == []
            finally:
                await service.aclose()

        run_async(go())

    def test_cancel_terminal_job_is_a_noop(self):
        async def go():
            service = thread_service()
            await service.start()
            try:
                job = service.submit("sleep", {"label": "done"})
                await wait_terminal(service, job)
                again = await service.cancel(job.id)
                assert again.state == DONE and again.completions == 1
            finally:
                await service.aclose()

        run_async(go())


class TestRetry:
    def test_deterministic_failure_is_not_retried(self):
        async def go():
            service = thread_service()
            await service.start()
            try:
                job = service.submit("sleep", {"fail": True, "label": "d"})
                await wait_terminal(service, job)
                assert job.state == FAILED
                assert job.attempts == 1
            finally:
                await service.aclose()

        run_async(go())

    def test_crashed_worker_requeues_and_recovers(self, tmp_path):
        """The spawn worker hard-exits mid-job; the shard requeues onto
        a fresh worker and attempt 2 succeeds."""
        marker = tmp_path / "crash-once"

        async def go():
            service = TraceService(ServiceConfig(
                shards=1, executor="spawn", job_timeout_s=120.0,
            ))
            await service.start()
            try:
                job = service.submit("sleep", {
                    "duration_s": 0.0, "label": "crashy",
                    "crash_unless": str(marker),
                })
                await wait_terminal(service, job, timeout_s=120.0)
                assert job.state == DONE
                assert job.attempts == 2
                assert "requeued" in [e.event for e in job.events]
                assert check_service(service) == []
            finally:
                await service.aclose()

        run_async(go())
        assert marker.exists()


class TestDiskCache:
    def test_warm_resubmit_completes_at_the_door(self, tmp_path):
        cache_dir = tmp_path / "cache"
        payload = {"seed": 12, "users": 400, "chunk": 128}

        async def first():
            service = TraceService(ServiceConfig(
                shards=1, executor="thread", cache_dir=cache_dir,
            ))
            await service.start()
            try:
                job = service.submit("trace", payload)
                await wait_terminal(service, job)
                assert job.state == DONE and not job.cache_hit
                return job.result["result_json"]
            finally:
                await service.aclose()

        async def second():
            service = TraceService(ServiceConfig(
                shards=1, executor="thread", cache_dir=cache_dir,
            ))
            await service.start()
            try:
                job = service.submit("trace", payload)
                # A disk hit completes before submit() returns.
                assert job.state == DONE and job.cache_hit
                assert job.completions == 1
                return job.result["result_json"]
            finally:
                await service.aclose()

        fresh = run_async(first())
        warm = run_async(second())
        assert json.loads(fresh)["rows"] == json.loads(warm)["rows"]


class TestHealth:
    def test_violations_surface(self):
        async def go():
            service = thread_service()
            await service.start()
            try:
                job = service.submit("sleep", {"label": "h"})
                await wait_terminal(service, job)
                assert check_service(service) == []
                job.completions = 2  # corrupt the ledger on purpose
                violations = check_service(service)
                assert any(v.check == "service.exactly_once"
                           for v in violations)
                job.completions = 1
            finally:
                await service.aclose()

        run_async(go())

    def test_terminal_states_are_terminal(self):
        assert TERMINAL == {DONE, FAILED, CANCELLED}

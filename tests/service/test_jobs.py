"""Job vocabulary: keys, validation, cache addresses, the worker fn."""

import json

import pytest

from repro.errors import ServiceError
from repro.service import jobs
from repro.traces import iter_users, stream_statistics
from repro.traces.google import TraceConfig


class TestJobKey:
    def test_experiment_key_uses_campaign_grammar(self):
        key = jobs.job_key("experiment", {
            "experiment": "fig08", "preset": "quick", "seed": 3,
        })
        assert key == "fig08@quick#s3"

    def test_overrides_fold_into_a_digest_suffix(self):
        base = {"experiment": "fig08", "preset": "quick", "seed": 3}
        plain = jobs.job_key("experiment", base)
        a = jobs.job_key("experiment",
                         base | {"overrides": {"boot_runs": 5}})
        b = jobs.job_key("experiment",
                         base | {"overrides": {"boot_runs": 6}})
        assert a != plain and a != b
        assert a.startswith(plain + "+") and len(a) == len(plain) + 9

    def test_trace_and_sleep_keys(self):
        assert jobs.job_key("trace", {"seed": 7, "users": 100}) == \
            "trace:s7:u100"
        assert jobs.job_key("sleep", {"duration_s": 1.5, "label": "x"}) == \
            "sleep:1.5:x"

    def test_unknown_kind(self):
        with pytest.raises(ServiceError):
            jobs.job_key("bogus", {})


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ServiceError, match="unknown job kind"):
            jobs.validate_payload("bogus", {})

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ServiceError, match="unknown experiment"):
            jobs.validate_payload("experiment", {"experiment": "fig99"})

    def test_bad_trace_users_rejected(self):
        with pytest.raises(ServiceError, match="users"):
            jobs.validate_payload("trace", {"users": 0})

    def test_negative_sleep_rejected(self):
        with pytest.raises(ServiceError, match="duration"):
            jobs.validate_payload("sleep", {"duration_s": -1})


class TestCacheKeys:
    def test_experiment_key_matches_the_campaign_cache(self):
        """The service and ``--cache`` campaign runs share entries."""
        import dataclasses

        from repro.campaign.cache import job_cache_key
        from repro.campaign.spec import JobSpec
        from repro.harness.config import ExperimentConfig

        payload = {"experiment": "fig08", "preset": "quick", "seed": 3}
        spec = JobSpec(
            experiment="fig08", preset="quick", seed=3,
            config=dataclasses.replace(
                ExperimentConfig.preset("quick"), seed=3
            ),
        )
        assert jobs.cache_key_for("experiment", payload) == \
            job_cache_key(spec)

    def test_sleep_is_not_cacheable(self):
        assert jobs.cache_key_for("sleep", {"duration_s": 1.0}) is None

    def test_trace_key_varies_with_inputs(self):
        keys = {
            jobs.cache_key_for("trace", {"seed": 1, "users": 100}),
            jobs.cache_key_for("trace", {"seed": 2, "users": 100}),
            jobs.cache_key_for("trace", {"seed": 1, "users": 200}),
            jobs.cache_key_for("trace", {"seed": 1, "users": 100,
                                         "chunk": 64}),
        }
        assert len(keys) == 4
        assert jobs.cache_key_for("trace", {"seed": 1, "users": 100}) in keys


class TestRunPayload:
    def test_sleep_envelope(self):
        out = jobs.run_payload("sleep", {"duration_s": 0.0, "label": "t"})
        assert set(out) == {"result_json", "wall_s"}
        doc = json.loads(out["result_json"])
        assert doc["experiment"] == "sleep"
        assert doc["rows"][0]["label"] == "t"

    def test_fail_knob_raises(self):
        with pytest.raises(ServiceError, match="asked to fail"):
            jobs.run_payload("sleep", {"fail": True, "label": "f"})

    def test_trace_job_matches_direct_streaming(self):
        out = jobs.run_payload("trace", {"seed": 5, "users": 300,
                                         "chunk": 128})
        row = json.loads(out["result_json"])["rows"][0]
        expected = stream_statistics(
            iter_users(TraceConfig(seed=5, users=300), chunk=128)
        )
        for key, value in expected.items():
            assert row[key] == pytest.approx(value)

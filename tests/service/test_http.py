"""The HTTP/SSE front end, driven over real loopback sockets."""

import http.client
import json
import time

import pytest

from repro.errors import AdmissionError, ServiceError
from repro.service.client import ServiceClient
from repro.service.core import ServiceConfig
from repro.service.thread import ServiceThread


def thread_config(**overrides) -> ServiceConfig:
    return ServiceConfig(**{"shards": 1, "executor": "thread",
                            **overrides})


@pytest.fixture()
def live():
    with ServiceThread(thread_config()) as instance:
        yield instance


class TestRoundtrip:
    def test_submit_wait_status(self, live):
        client = ServiceClient(port=live.port)
        doc = client.submit("sleep", {"duration_s": 0.01, "label": "rt"})
        assert doc["state"] in ("queued", "running")
        final = client.wait(doc["id"], timeout_s=30.0)
        assert final["state"] == "done"
        assert final["wall_s"] >= 0.01
        assert final["result"]["rows"][0]["label"] == "rt"

    def test_duplicate_submit_returns_the_same_job(self, live):
        client = ServiceClient(port=live.port)
        payload = {"duration_s": 0.01, "label": "dup"}
        a = client.submit("sleep", payload, client="one")
        b = client.submit("sleep", payload, client="two")
        assert b["id"] == a["id"]
        final = client.wait(a["id"], timeout_s=30.0)
        # Resubmitting a finished key attaches to the cached result.
        c = client.submit("sleep", payload, client="three")
        assert c["id"] == a["id"] and c["state"] == "done"
        assert final["state"] == "done"

    def test_overview_lists_jobs(self, live):
        client = ServiceClient(port=live.port)
        doc = client.submit("sleep", {"label": "listed"})
        client.wait(doc["id"], timeout_s=30.0)
        overview = client.overview()
        assert overview["config"]["executor"] == "thread"
        assert any(job["id"] == doc["id"] for job in overview["jobs"])


class TestErrors:
    def test_unknown_job_is_404(self, live):
        client = ServiceClient(port=live.port)
        with pytest.raises(ServiceError, match="404"):
            client.status("j99999")

    def test_wrong_method_is_405(self, live):
        conn = http.client.HTTPConnection("127.0.0.1", live.port, timeout=10)
        try:
            conn.request("DELETE", "/jobs")
            assert conn.getresponse().status == 405
        finally:
            conn.close()

    def test_bad_body_is_400(self, live):
        conn = http.client.HTTPConnection("127.0.0.1", live.port, timeout=10)
        try:
            conn.request("POST", "/jobs", body=b"not json",
                         headers={"Content-Type": "application/json"})
            assert conn.getresponse().status == 400
        finally:
            conn.close()

    def test_bad_kind_is_400(self, live):
        client = ServiceClient(port=live.port)
        with pytest.raises(ServiceError, match="400"):
            client.submit("bogus", {})

    def test_unknown_route_is_404(self, live):
        conn = http.client.HTTPConnection("127.0.0.1", live.port, timeout=10)
        try:
            conn.request("GET", "/nope")
            assert conn.getresponse().status == 404
        finally:
            conn.close()


class TestAdmissionOverHttp:
    def test_429_carries_retry_after(self):
        config = thread_config(capacity=1, per_client_quota=1,
                               retry_after_s=0.2)
        with ServiceThread(config) as live:
            client = ServiceClient(port=live.port)
            hold = client.submit("sleep", {"duration_s": 5.0,
                                           "label": "hold"},
                                 client="filler")
            with pytest.raises(AdmissionError) as excinfo:
                client.submit("sleep", {"label": "over"}, client="late")
            assert excinfo.value.reason == "capacity"
            assert excinfo.value.retry_after_s == pytest.approx(0.2)
            # The raw header is present too, not just the JSON body.
            conn = http.client.HTTPConnection("127.0.0.1", live.port,
                                              timeout=10)
            try:
                conn.request("POST", "/jobs", body=json.dumps({
                    "kind": "sleep", "payload": {"label": "again"},
                    "client": "late2",
                }).encode(), headers={"Content-Type": "application/json"})
                response = conn.getresponse()
                assert response.status == 429
                assert float(response.getheader("Retry-After")) > 0
            finally:
                conn.close()
            client.cancel(hold["id"])


class TestStreaming:
    def test_sse_lifecycle_to_terminal(self, live):
        client = ServiceClient(port=live.port)
        doc = client.submit("sleep", {"duration_s": 0.05, "label": "sse"})
        events = list(client.stream(doc["id"]))
        names = [name for name, _data in events]
        assert names[0] == "queued" and names[-1] == "done"
        assert "started" in names
        # Every event carries the job identity and a state.
        assert all(data["id"] == doc["id"] for _name, data in events)

    def test_late_subscriber_replays_history(self, live):
        client = ServiceClient(port=live.port)
        doc = client.submit("sleep", {"duration_s": 0.0, "label": "late"})
        client.wait(doc["id"], timeout_s=30.0)
        # Job already terminal: the stream replays and closes.
        names = [name for name, _data in client.stream(doc["id"])]
        assert names == ["queued", "started", "done"]

    def test_disconnect_mid_stream_leaks_nothing(self, live):
        """A client that vanishes mid-stream is unsubscribed, and its
        job keeps running (disconnection is not cancellation)."""
        client = ServiceClient(port=live.port)
        doc = client.submit("sleep", {"duration_s": 4.0, "label": "gone"})

        conn = http.client.HTTPConnection("127.0.0.1", live.port,
                                          timeout=10)
        conn.request("GET", f"/jobs/{doc['id']}/stream")
        response = conn.getresponse()
        assert response.status == 200
        assert response.fp.readline().startswith(b"id:")
        # Vanish without reading to the end.  Close the response too:
        # it duplicates the socket fd, and while it lives no FIN ever
        # reaches the server.
        response.close()
        conn.close()

        def subscribers(svc):
            async def go(svc):
                return svc.subscriber_count(doc["id"])
            return go(svc)

        deadline = time.monotonic() + 10.0
        while live.call(subscribers) and time.monotonic() < deadline:
            time.sleep(0.05)
        assert live.call(subscribers) == 0
        assert client.status(doc["id"])["state"] in ("queued", "running")
        client.cancel(doc["id"])
        final = client.wait(doc["id"], timeout_s=10.0)
        assert final["state"] == "cancelled"


class TestOps:
    def test_healthz_green(self, live):
        client = ServiceClient(port=live.port)
        doc = client.submit("sleep", {"label": "hz"})
        client.wait(doc["id"], timeout_s=30.0)
        health = client.healthz()
        assert health["status"] == "ok" and health["violations"] == []

    def test_metrics_exposition(self, live):
        client = ServiceClient(port=live.port)
        doc = client.submit("sleep", {"label": "m"})
        client.wait(doc["id"], timeout_s=30.0)
        text = client.metrics_text()
        assert "service_jobs_submitted_total" in text
        assert "service_jobs_finished_total" in text

    def test_teardown_races_a_fresh_cancel(self):
        """Regression: cancelling a running job and stopping the
        service in the same breath must not wedge teardown (the shard
        loop once swallowed its own shutdown cancellation here and
        aclose waited on a zombie for the full join timeout)."""
        start = time.perf_counter()
        with ServiceThread(thread_config()) as live:
            client = ServiceClient(port=live.port)
            doc = client.submit("sleep", {"duration_s": 3.0,
                                          "label": "racing"})
            deadline = time.monotonic() + 10.0
            while (client.status(doc["id"])["state"] != "running"
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            client.cancel(doc["id"])
            # exit immediately: stop() races the cancel's shard-side
            # completion, exactly the admission-lane shape
        assert time.perf_counter() - start < 10.0

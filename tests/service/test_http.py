"""The HTTP/SSE front end, driven over real loopback sockets."""

import http.client
import json
import socket
import struct
import threading
import time

import pytest

from repro.errors import (
    AdmissionError,
    ServiceError,
    ServiceUnavailableError,
)
from repro.service.client import ServiceClient
from repro.service.core import ServiceConfig
from repro.service.thread import ServiceThread


def thread_config(**overrides) -> ServiceConfig:
    return ServiceConfig(**{"shards": 1, "executor": "thread",
                            **overrides})


@pytest.fixture()
def live():
    with ServiceThread(thread_config()) as instance:
        yield instance


async def _count(svc, job_id):
    return svc.subscriber_count(job_id)


class TestRoundtrip:
    def test_submit_wait_status(self, live):
        client = ServiceClient(port=live.port)
        doc = client.submit("sleep", {"duration_s": 0.01, "label": "rt"})
        assert doc["state"] in ("queued", "running")
        final = client.wait(doc["id"], timeout_s=30.0)
        assert final["state"] == "done"
        assert final["wall_s"] >= 0.01
        assert final["result"]["rows"][0]["label"] == "rt"

    def test_duplicate_submit_returns_the_same_job(self, live):
        client = ServiceClient(port=live.port)
        payload = {"duration_s": 0.01, "label": "dup"}
        a = client.submit("sleep", payload, client="one")
        b = client.submit("sleep", payload, client="two")
        assert b["id"] == a["id"]
        final = client.wait(a["id"], timeout_s=30.0)
        # Resubmitting a finished key attaches to the cached result.
        c = client.submit("sleep", payload, client="three")
        assert c["id"] == a["id"] and c["state"] == "done"
        assert final["state"] == "done"

    def test_overview_lists_jobs(self, live):
        client = ServiceClient(port=live.port)
        doc = client.submit("sleep", {"label": "listed"})
        client.wait(doc["id"], timeout_s=30.0)
        overview = client.overview()
        assert overview["config"]["executor"] == "thread"
        assert any(job["id"] == doc["id"] for job in overview["jobs"])


class TestErrors:
    def test_unknown_job_is_404(self, live):
        client = ServiceClient(port=live.port)
        with pytest.raises(ServiceError, match="404"):
            client.status("j99999")

    def test_wrong_method_is_405(self, live):
        conn = http.client.HTTPConnection("127.0.0.1", live.port, timeout=10)
        try:
            conn.request("DELETE", "/jobs")
            assert conn.getresponse().status == 405
        finally:
            conn.close()

    def test_bad_body_is_400(self, live):
        conn = http.client.HTTPConnection("127.0.0.1", live.port, timeout=10)
        try:
            conn.request("POST", "/jobs", body=b"not json",
                         headers={"Content-Type": "application/json"})
            assert conn.getresponse().status == 400
        finally:
            conn.close()

    def test_bad_kind_is_400(self, live):
        client = ServiceClient(port=live.port)
        with pytest.raises(ServiceError, match="400"):
            client.submit("bogus", {})

    def _post_jobs(self, live, doc):
        conn = http.client.HTTPConnection("127.0.0.1", live.port,
                                          timeout=10)
        try:
            conn.request("POST", "/jobs", body=json.dumps(doc).encode(),
                         headers={"Content-Type": "application/json"})
            response = conn.getresponse()
            return response.status, json.loads(response.read() or b"{}")
        finally:
            conn.close()

    def test_nonpositive_deadline_is_400(self, live):
        status, body = self._post_jobs(
            live, {"kind": "sleep", "payload": {"label": "d"},
                   "deadline_s": -1})
        assert status == 400
        assert "deadline_s" in body["error"]

    def test_non_numeric_deadline_is_400(self, live):
        status, body = self._post_jobs(
            live, {"kind": "sleep", "payload": {"label": "d"},
                   "deadline_s": "soon"})
        assert status == 400
        assert "deadline_s" in body["error"]

    def test_non_numeric_priority_is_400_with_its_own_message(self, live):
        """Regression: a bad priority used to surface as a misleading
        'bad deadline_s' 400."""
        status, body = self._post_jobs(
            live, {"kind": "sleep", "payload": {"label": "p"},
                   "priority": "high"})
        assert status == 400
        assert "priority" in body["error"]
        assert "deadline" not in body["error"]

    def test_unknown_route_is_404(self, live):
        conn = http.client.HTTPConnection("127.0.0.1", live.port, timeout=10)
        try:
            conn.request("GET", "/nope")
            assert conn.getresponse().status == 404
        finally:
            conn.close()


class TestAdmissionOverHttp:
    def test_429_carries_retry_after(self):
        config = thread_config(capacity=1, per_client_quota=1,
                               retry_after_s=0.2)
        with ServiceThread(config) as live:
            client = ServiceClient(port=live.port)
            hold = client.submit("sleep", {"duration_s": 5.0,
                                           "label": "hold"},
                                 client="filler")
            with pytest.raises(AdmissionError) as excinfo:
                client.submit("sleep", {"label": "over"}, client="late")
            assert excinfo.value.reason == "capacity"
            assert excinfo.value.retry_after_s == pytest.approx(0.2)
            # The raw header is present too, not just the JSON body.
            conn = http.client.HTTPConnection("127.0.0.1", live.port,
                                              timeout=10)
            try:
                conn.request("POST", "/jobs", body=json.dumps({
                    "kind": "sleep", "payload": {"label": "again"},
                    "client": "late2",
                }).encode(), headers={"Content-Type": "application/json"})
                response = conn.getresponse()
                assert response.status == 429
                assert float(response.getheader("Retry-After")) > 0
            finally:
                conn.close()
            client.cancel(hold["id"])


class TestStreaming:
    def test_sse_lifecycle_to_terminal(self, live):
        client = ServiceClient(port=live.port)
        doc = client.submit("sleep", {"duration_s": 0.05, "label": "sse"})
        events = list(client.stream(doc["id"]))
        names = [name for name, _data in events]
        assert names[0] == "queued" and names[-1] == "done"
        assert "started" in names
        # Every event carries the job identity and a state.
        assert all(data["id"] == doc["id"] for _name, data in events)

    def test_late_subscriber_replays_history(self, live):
        client = ServiceClient(port=live.port)
        doc = client.submit("sleep", {"duration_s": 0.0, "label": "late"})
        client.wait(doc["id"], timeout_s=30.0)
        # Job already terminal: the stream replays and closes.
        names = [name for name, _data in client.stream(doc["id"])]
        assert names == ["queued", "started", "done"]

    def test_disconnect_mid_stream_leaks_nothing(self, live):
        """A client that vanishes mid-stream is unsubscribed, and its
        job keeps running (disconnection is not cancellation)."""
        client = ServiceClient(port=live.port)
        doc = client.submit("sleep", {"duration_s": 4.0, "label": "gone"})

        conn = http.client.HTTPConnection("127.0.0.1", live.port,
                                          timeout=10)
        conn.request("GET", f"/jobs/{doc['id']}/stream")
        response = conn.getresponse()
        assert response.status == 200
        assert response.fp.readline().startswith(b"id:")
        # Vanish without reading to the end.  Close the response too:
        # it duplicates the socket fd, and while it lives no FIN ever
        # reaches the server.
        response.close()
        conn.close()

        def subscribers(svc):
            async def go(svc):
                return svc.subscriber_count(doc["id"])
            return go(svc)

        deadline = time.monotonic() + 10.0
        while live.call(subscribers) and time.monotonic() < deadline:
            time.sleep(0.05)
        assert live.call(subscribers) == 0
        assert client.status(doc["id"])["state"] in ("queued", "running")
        client.cancel(doc["id"])
        final = client.wait(doc["id"], timeout_s=10.0)
        assert final["state"] == "cancelled"

    def test_abrupt_disconnect_mid_event_frame(self, live):
        """A subscriber that RSTs its socket after reading only half a
        frame (not even a full SSE event) must not take the service
        down — the write side absorbs the connection reset and the
        job's remaining events go to nobody."""
        client = ServiceClient(port=live.port)
        doc = client.submit("sleep", {"duration_s": 1.0, "label": "rst"})

        sock = socket.create_connection(("127.0.0.1", live.port),
                                        timeout=10)
        try:
            sock.sendall(
                f"GET /jobs/{doc['id']}/stream HTTP/1.1\r\n"
                f"Host: x\r\n\r\n".encode()
            )
            # Read a handful of bytes: headers + the first few bytes of
            # the first event frame, then vanish with an RST (SO_LINGER
            # zero) instead of a polite FIN.
            assert sock.recv(64)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                            struct.pack("ii", 1, 0))
        finally:
            sock.close()

        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if live.call(lambda svc: _count(svc, doc["id"])) == 0:
                break
            time.sleep(0.05)
        assert live.call(lambda svc: _count(svc, doc["id"])) == 0
        # The service shrugged: the job finishes and health is green.
        final = client.wait(doc["id"], timeout_s=30.0)
        assert final["state"] == "done"
        assert client.healthz()["status"] == "ok"


class TestOps:
    def test_healthz_green(self, live):
        client = ServiceClient(port=live.port)
        doc = client.submit("sleep", {"label": "hz"})
        client.wait(doc["id"], timeout_s=30.0)
        health = client.healthz()
        assert health["status"] == "ok" and health["violations"] == []

    def test_metrics_exposition(self, live):
        client = ServiceClient(port=live.port)
        doc = client.submit("sleep", {"label": "m"})
        client.wait(doc["id"], timeout_s=30.0)
        text = client.metrics_text()
        assert "service_jobs_submitted_total" in text
        assert "service_jobs_finished_total" in text

    def test_metrics_survive_concurrent_scrape_and_shutdown(self):
        """Scrape /metrics from several threads while the service goes
        down mid-flight: every scrape either returns a full exposition
        or a clean connection error — never a hung thread or a torn
        half-response that parses as metrics."""
        live = ServiceThread(thread_config()).start()
        client = ServiceClient(port=live.port, timeout_s=5.0)
        doc = client.submit("sleep", {"duration_s": 0.5, "label": "mx"})
        stop = threading.Event()
        outcomes: list[str] = []
        lock = threading.Lock()

        def scrape():
            while not stop.is_set():
                try:
                    text = client.metrics_text()
                except (ServiceError, OSError):
                    with lock:
                        outcomes.append("refused")
                    continue
                assert "service_jobs_submitted_total" in text
                with lock:
                    outcomes.append("ok")

        scrapers = [threading.Thread(target=scrape) for _ in range(4)]
        for thread in scrapers:
            thread.start()
        time.sleep(0.2)  # let scrapes overlap live traffic …
        live.stop()      # … then yank the service out from under them
        time.sleep(0.2)
        stop.set()
        for thread in scrapers:
            thread.join(timeout=10.0)
        assert not any(thread.is_alive() for thread in scrapers)
        assert "ok" in outcomes  # scrapes really ran before the stop
        del doc

    def test_teardown_races_a_fresh_cancel(self):
        """Regression: cancelling a running job and stopping the
        service in the same breath must not wedge teardown (the shard
        loop once swallowed its own shutdown cancellation here and
        aclose waited on a zombie for the full join timeout)."""
        start = time.perf_counter()
        with ServiceThread(thread_config()) as live:
            client = ServiceClient(port=live.port)
            doc = client.submit("sleep", {"duration_s": 3.0,
                                          "label": "racing"})
            deadline = time.monotonic() + 10.0
            while (client.status(doc["id"])["state"] != "running"
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            client.cancel(doc["id"])
            # exit immediately: stop() races the cancel's shard-side
            # completion, exactly the admission-lane shape
        assert time.perf_counter() - start < 10.0


async def _start_drain(svc):
    """Kick off the drain without waiting for it: the 503 window only
    exists while in-flight work holds the drain open."""
    import asyncio

    asyncio.ensure_future(svc.aclose(drain=True, drain_timeout_s=30.0))
    while not svc.draining:
        await asyncio.sleep(0.005)


class TestDrainOverHttp:
    def test_503_with_retry_after_while_draining(self, tmp_path):
        config = thread_config(journal_dir=tmp_path / "journal",
                               journal_fsync="never", retry_after_s=0.25)
        with ServiceThread(config) as live:
            client = ServiceClient(port=live.port)
            doc = client.submit("sleep", {"duration_s": 2.0, "label": "d"})
            live.call(_start_drain)
            with pytest.raises(ServiceUnavailableError) as excinfo:
                client.submit("sleep", {"label": "late"})
            assert excinfo.value.retry_after_s == pytest.approx(0.25)
            # The raw response is a real 503 with the header set.
            conn = http.client.HTTPConnection("127.0.0.1", live.port,
                                              timeout=10)
            try:
                conn.request("POST", "/jobs", body=json.dumps({
                    "kind": "sleep", "payload": {"label": "raw"},
                }).encode(), headers={"Content-Type": "application/json"})
                response = conn.getresponse()
                assert response.status == 503
                assert float(response.getheader("Retry-After")) > 0
                assert json.loads(response.read())["reason"] == "draining"
            finally:
                conn.close()
            # The in-flight job still finishes: drain means finish,
            # not abandon.
            deadline = time.monotonic() + 30.0
            while (client.status(doc["id"])["state"] != "done"
                   and time.monotonic() < deadline):
                time.sleep(0.05)
            assert client.status(doc["id"])["state"] == "done"


class TestClientRetries:
    def test_default_client_surfaces_the_refusal(self):
        config = thread_config(capacity=1)
        with ServiceThread(config) as live:
            client = ServiceClient(port=live.port)
            hold = client.submit("sleep", {"duration_s": 5.0,
                                           "label": "hold"})
            with pytest.raises(AdmissionError):
                client.submit("sleep", {"label": "over"}, client="late")
            client.cancel(hold["id"])

    def test_max_retries_resubmits_after_the_hint(self):
        config = thread_config(capacity=1, retry_after_s=0.1)
        with ServiceThread(config) as live:
            client = ServiceClient(port=live.port, max_retries=3)
            slept: list[float] = []
            hold = client.submit("sleep", {"duration_s": 30.0,
                                           "label": "hold"})

            def free_then_note(seconds: float) -> None:
                # First refusal: free the slot instead of sleeping, so
                # the retry deterministically succeeds.
                slept.append(seconds)
                client_b = ServiceClient(port=live.port)
                client_b.cancel(hold["id"])

            client._sleep = free_then_note
            doc = client.submit("sleep", {"label": "retried"},
                                client="late")
            assert doc["state"] in ("queued", "running", "done")
            assert len(slept) == 1
            assert 0 < slept[0] <= client.backoff_cap_s

    def test_backoff_is_capped_and_jittered(self):
        client = ServiceClient(max_retries=5, backoff_cap_s=2.0)
        client._rng.seed(42)
        delays = [client._backoff_s(10.0, attempt)
                  for attempt in range(1, 6)]
        assert all(d <= 2.0 for d in delays)  # hint 10s, capped at 2
        assert all(d >= 1.0 for d in delays)  # jitter floor is 50%
        assert len(set(delays)) > 1  # actually jittered

    def test_retry_budget_exhausts(self):
        config = thread_config(capacity=1, retry_after_s=0.02)
        with ServiceThread(config) as live:
            client = ServiceClient(port=live.port, max_retries=2)
            naps: list[float] = []
            client._sleep = naps.append
            hold = client.submit("sleep", {"duration_s": 30.0,
                                           "label": "hold"})
            with pytest.raises(AdmissionError):
                client.submit("sleep", {"label": "doomed"}, client="late")
            assert len(naps) == 2  # retried exactly max_retries times
            client.cancel(hold["id"])

"""The per-shard circuit breaker state machine, on an injected clock."""

import pytest

from repro.errors import ConfigurationError
from repro.service.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerConfig,
    CircuitBreaker,
)


class Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def breaker(threshold=3, cooldown=5.0, clock=None, **kwargs):
    return CircuitBreaker(
        BreakerConfig(failure_threshold=threshold, cooldown_s=cooldown),
        clock=clock or Clock(), **kwargs,
    )


class TestConfig:
    def test_bounds(self):
        with pytest.raises(ConfigurationError):
            BreakerConfig(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            BreakerConfig(cooldown_s=0.0)


class TestTripping:
    def test_trips_at_threshold_consecutive_failures(self):
        b = breaker(threshold=3)
        assert not b.record_failure()
        assert not b.record_failure()
        assert b.record_failure()  # the third trips
        assert b.state == OPEN and b.shedding

    def test_success_resets_the_streak(self):
        b = breaker(threshold=2)
        b.record_failure()
        b.record_success()
        b.record_failure()
        assert b.state == CLOSED  # streak restarted, not accumulated

    def test_closed_breaker_always_allows(self):
        b = breaker()
        assert all(b.allow() for _ in range(10))


class TestHalfOpenProbe:
    def test_cooldown_then_single_probe(self):
        clock = Clock()
        b = breaker(threshold=1, cooldown=5.0, clock=clock)
        b.record_failure()
        assert b.state == OPEN
        assert not b.allow()  # still cooling
        assert b.cooldown_remaining() == pytest.approx(5.0)

        clock.now = 5.1
        assert b.allow()  # the probe slot
        assert b.state == HALF_OPEN
        assert not b.allow()  # exactly one probe at a time
        assert not b.shedding  # half-open accepts work again

    def test_probe_success_closes(self):
        clock = Clock()
        b = breaker(threshold=1, cooldown=1.0, clock=clock)
        b.record_failure()
        clock.now = 1.5
        assert b.allow()
        b.record_success()
        assert b.state == CLOSED
        assert b.consecutive_failures == 0
        assert b.allow()

    def test_released_probe_slot_goes_to_the_next_job(self):
        """A granted probe whose job never launched (cancelled before
        dispatch) is handed back without changing the verdict."""
        clock = Clock()
        b = breaker(threshold=1, cooldown=1.0, clock=clock)
        b.record_failure()
        clock.now = 1.5
        assert b.allow()  # probe granted ...
        b.release_probe()  # ... but the job was cancelled pre-launch
        assert b.state == HALF_OPEN  # no health verdict either way
        assert b.allow()  # the next queued job gets the slot
        b.record_success()
        assert b.state == CLOSED

    def test_release_probe_on_closed_breaker_is_a_noop(self):
        b = breaker()
        assert b.allow()
        b.release_probe()
        assert b.state == CLOSED and b.allow()

    def test_probe_failure_reopens_with_fresh_cooldown(self):
        clock = Clock()
        b = breaker(threshold=1, cooldown=2.0, clock=clock)
        b.record_failure()
        clock.now = 2.5
        assert b.allow()
        assert b.record_failure()  # the probe died
        assert b.state == OPEN
        assert b.cooldown_remaining() == pytest.approx(2.0)
        assert not b.allow()
        clock.now = 5.0
        assert b.allow()  # second probe after the fresh cooldown


class TestReporting:
    def test_transitions_and_observer(self):
        seen = []
        clock = Clock()
        b = breaker(threshold=1, cooldown=1.0, clock=clock,
                    on_transition=lambda old, new: seen.append((old, new)))
        b.record_failure()
        clock.now = 1.5
        b.allow()
        b.record_success()
        assert seen == [(CLOSED, OPEN), (OPEN, HALF_OPEN),
                        (HALF_OPEN, CLOSED)]
        assert b.transitions == seen

    def test_describe_counts_trips(self):
        clock = Clock()
        b = breaker(threshold=1, cooldown=1.0, clock=clock, name="shard-7")
        b.record_failure()
        clock.now = 1.5
        b.allow()
        b.record_failure()
        doc = b.describe()
        assert doc["name"] == "shard-7"
        assert doc["state"] == OPEN
        assert doc["trips"] == 2

"""End-to-end distributed tracing: one job, one connected trace.

Covers the span pipeline in-process (thread executor), the spawn
boundary (worker spans + sim children + retry attempts under one trace
id), the journal's trace-id survival across a crash, and the HTTP
surface (``X-Trace-Id`` everywhere, ``GET /jobs/<id>/trace``).
"""

import asyncio
import os
import time

import pytest

from repro.obs.distributed import PHASES, TraceContext
from repro.service.client import ServiceClient
from repro.service.core import ServiceConfig, TraceService
from repro.service.thread import ServiceThread


def run_async(coro):
    loop = asyncio.new_event_loop()
    try:
        return loop.run_until_complete(coro)
    finally:
        loop.close()


async def wait_terminal(service, job, timeout_s=120.0):
    history, queue = service.subscribe(job.id)
    try:
        if any(e.event in ("done", "failed", "cancelled") for e in history):
            return
        async with asyncio.timeout(timeout_s):
            while True:
                event = await queue.get()
                if event.event in ("done", "failed", "cancelled"):
                    return
    finally:
        service.unsubscribe(job.id, queue)


def thread_service(**overrides) -> TraceService:
    config = ServiceConfig(**{"shards": 1, "executor": "thread",
                              **overrides})
    return TraceService(config)


class TestInProcessTrace:
    def test_one_job_yields_one_connected_trace(self):
        async def scenario():
            service = thread_service()
            await service.start()
            try:
                job = service.submit("sleep", {"duration_s": 0.02,
                                               "label": "traced"})
                assert job.trace_id
                await wait_terminal(service, job)
                return job.trace_id, service.trace(job.id)
            finally:
                await service.aclose()

        trace_id, doc = run_async(scenario())
        assert doc["trace_id"] == trace_id
        assert doc["connected"]
        names = {s["name"] for s in doc["spans"]}
        assert {"job", "cache.probe", "admission", "queue.wait",
                "breaker.gate", "worker", "publish"} <= names
        assert all(s["trace_id"] == trace_id for s in doc["spans"])

    def test_critical_path_components_tile_e2e(self):
        async def scenario():
            service = thread_service()
            await service.start()
            try:
                job = service.submit("sleep", {"duration_s": 0.05,
                                               "label": "tiled"})
                await wait_terminal(service, job)
                return service.trace(job.id)
            finally:
                await service.aclose()

        doc = run_async(scenario())
        path = doc["critical_path"]
        total = sum(path["components"].values())
        assert path["e2e_s"] > 0
        # "other" pads to e2e by construction; the 5% acceptance bound
        # is then about the recorded phases actually tiling the job.
        assert total == pytest.approx(path["e2e_s"], rel=0.05)
        assert path["coverage"] > 0.5
        assert path["components"]["worker"] >= 0.05

    def test_caller_context_and_baggage_propagate(self):
        async def scenario():
            service = thread_service()
            await service.start()
            try:
                ctx = TraceContext.root("caller-minted-id", tenant="t9")
                job = service.submit(
                    "sleep", {"label": "ctx"}, trace=ctx.child("parent01")
                )
                await wait_terminal(service, job)
                return job, service.trace(job.id)
            finally:
                await service.aclose()

        job, doc = run_async(scenario())
        assert job.trace_id == "caller-minted-id"
        assert job.summary()["trace_id"] == "caller-minted-id"
        roots = [s for s in doc["spans"] if s["name"] == "job"]
        assert roots[0]["parent_id"] == "parent01"
        # A parented trace is "disconnected" from the store's point of
        # view only if the parent span never arrives; callers that
        # bring their own parent must record it themselves.
        assert doc["connected"] is False

    def test_done_event_carries_trace_id_and_critical_path(self):
        async def scenario():
            service = thread_service()
            await service.start()
            try:
                job = service.submit("sleep", {"label": "evt"})
                history, queue = service.subscribe(job.id)
                try:
                    async with asyncio.timeout(60.0):
                        events = list(history)
                        while not any(e.event == "done" for e in events):
                            events.append(await queue.get())
                finally:
                    service.unsubscribe(job.id, queue)
                return job, [e for e in events if e.event == "done"][0]
            finally:
                await service.aclose()

        job, done = run_async(scenario())
        assert done.data["trace_id"] == job.trace_id
        path = done.data["critical_path"]
        assert sum(path["components"].values()) == (
            pytest.approx(path["e2e_s"], rel=0.05))

    def test_latency_histograms_expose_buckets_sum_count(self):
        async def scenario():
            service = thread_service()
            await service.start()
            try:
                job = service.submit("sleep", {"label": "hist"})
                await wait_terminal(service, job)
                return service.metrics.render_text()
            finally:
                await service.aclose()

        text = run_async(scenario())
        for family in ("service_admission_latency_s", "service_queue_wait_s",
                       "service_worker_wall_s", "service_e2e_latency_s"):
            assert f"# TYPE {family} histogram" in text
            assert f'{family}_bucket{{' in text
            assert 'le="+Inf"' in text
            assert f"{family}_sum{{" in text
            assert f"{family}_count{{" in text
        assert 'backend="thread"' in text
        assert 'kind="sleep"' in text

    def test_slo_document_rides_describe(self):
        async def scenario():
            service = thread_service()
            await service.start()
            try:
                job = service.submit("sleep", {"label": "slo"})
                await wait_terminal(service, job)
                return service.describe()
            finally:
                await service.aclose()

        doc = run_async(scenario())
        assert doc["slo"]["recorded"] == 1
        assert doc["slo"]["objectives"]["availability"]["bad"] == 0
        assert doc["traces_held"] == 1


class TestSpawnBoundary:
    def test_crash_requeue_stays_one_trace_with_retry_span(self, tmp_path):
        """Satellite: the trace survives the spawn boundary and a dead
        worker.  Two worker spans, one trace id, the retry attempt
        tagged ``retry=1``, and the job still completes exactly once.
        """
        marker = os.fspath(tmp_path / "crash-once")

        async def scenario():
            service = TraceService(ServiceConfig(
                shards=1, executor="spawn", job_timeout_s=120.0,
            ))
            await service.start()
            try:
                job = service.submit("sleep", {
                    "duration_s": 0.0, "crash_unless": marker,
                    "label": "crashy-trace",
                })
                await wait_terminal(service, job)
                return job, service.trace(job.id)
            finally:
                await service.aclose()

        job, doc = run_async(scenario())
        assert job.state == "done" and job.completions == 1
        workers = [s for s in doc["spans"] if s["name"] == "worker"]
        assert len(workers) == 2
        assert {w["tags"]["retry"] for w in workers} == {0, 1}
        assert {w["tags"]["outcome"] for w in workers} == {"crash", "ok"}
        assert all(w["trace_id"] == job.trace_id for w in workers)
        assert any(s["name"] == "retry.wait" for s in doc["spans"])
        assert doc["connected"]
        # Both attempts carry their own span id, so sim children of a
        # future successful attempt could never collide with the
        # crashed attempt's namespace.  (Sleep jobs run no engine, so
        # no sim spans here — the service experiment's telemetry lane
        # covers sim children riding a real experiment job.)
        assert workers[0]["span_id"] != workers[1]["span_id"]


class TestRecoveryKeepsTraceId:
    def test_replayed_job_keeps_its_trace_id(self, tmp_path):
        journal_dir = os.fspath(tmp_path / "journal")

        def config():
            return ServiceConfig(shards=1, executor="thread",
                                 journal_dir=journal_dir)

        async def first_boot():
            service = TraceService(config())
            await service.start()
            job = service.submit("sleep", {"duration_s": 5.0,
                                           "label": "survivor"})
            trace_id = job.trace_id
            # Abrupt teardown: no drain, no clean marker (the
            # in-process stand-in for SIGKILL).
            for task in service.shard_tasks():
                task.cancel()
            await asyncio.gather(*service.shard_tasks(),
                                 return_exceptions=True)
            return trace_id

        trace_id = run_async(first_boot())

        async def second_boot():
            service = TraceService(config())
            await service.start()
            try:
                jobs = list(service.jobs())
                return [(job.trace_id, job.summary()["trace_id"])
                        for job in jobs]
            finally:
                await service.aclose()

        recovered = run_async(second_boot())
        assert recovered, "journal replay must re-admit the job"
        assert all(tid == trace_id and stid == trace_id
                   for tid, stid in recovered)


class TestHttpSurface:
    @pytest.fixture()
    def live(self):
        with ServiceThread(ServiceConfig(shards=1,
                                         executor="thread")) as instance:
            yield instance

    def test_every_response_carries_x_trace_id(self, live):
        client = ServiceClient(port=live.port)
        doc = client.submit("sleep", {"label": "hdr"})
        assert client.last_trace_id == doc["trace_id"]
        client.wait(doc["id"], timeout_s=30.0)
        client.status(doc["id"])
        assert client.last_trace_id == doc["trace_id"]
        client.overview()
        assert client.last_trace_id  # request-scoped id, still present
        client.healthz()
        assert client.last_trace_id

    def test_inbound_trace_id_is_honoured(self, live):
        client = ServiceClient(port=live.port)
        doc = client.submit("sleep", {"label": "mine"},
                            trace_id="my-own-trace-id-01")
        assert doc["trace_id"] == "my-own-trace-id-01"
        assert client.last_trace_id == "my-own-trace-id-01"

    def test_hostile_inbound_trace_id_is_replaced(self, live):
        client = ServiceClient(port=live.port)
        doc = client.submit("sleep", {"label": "evil"},
                            trace_id="x")  # too short: rejected
        assert doc["trace_id"] != "x"
        assert len(doc["trace_id"]) == 16

    def test_trace_route_serves_connected_trace(self, live):
        client = ServiceClient(port=live.port)
        doc = client.submit("sleep", {"duration_s": 0.01, "label": "rt"})
        client.wait(doc["id"], timeout_s=30.0)
        trace = client.trace(doc["id"])
        assert trace["trace_id"] == doc["trace_id"]
        assert trace["connected"]
        names = [s["name"] for s in trace["spans"]]
        assert "http.parse" in names and "job" in names
        assert len(trace["spans"]) >= 6
        path = trace["critical_path"]
        assert sum(path["components"].values()) == (
            pytest.approx(path["e2e_s"], rel=0.05))

    def test_trace_route_chrome_format(self, live):
        client = ServiceClient(port=live.port)
        doc = client.submit("sleep", {"label": "chrome"})
        client.wait(doc["id"], timeout_s=30.0)
        chrome = client.trace(doc["id"], fmt="chrome")
        events = chrome["traceEvents"]
        assert events and chrome["displayTimeUnit"] == "ms"
        rows = {e["args"]["name"] for e in events
                if e.get("name") == "process_name"}
        assert "service" in rows and any(r.startswith("shard-")
                                         for r in rows)
        phases = {e["name"] for e in events if e.get("ph") == "X"}
        assert "worker" in phases

    def test_trace_of_unknown_job_is_404(self, live):
        client = ServiceClient(port=live.port)
        with pytest.raises(Exception, match="404"):
            client.trace("j99999")

    def test_dedupe_twin_reports_the_first_trace(self, live):
        client = ServiceClient(port=live.port)
        payload = {"duration_s": 0.2, "label": "twin"}
        a = client.submit("sleep", payload, client="one")
        b = client.submit("sleep", payload, client="two",
                          trace_id="second-submitters-id")
        assert b["id"] == a["id"]
        # The attach answers with the job's (first) trace id, so the
        # second submitter can find the one real trace.
        assert b["trace_id"] == a["trace_id"]
        assert client.last_trace_id == a["trace_id"]
        client.wait(a["id"], timeout_s=30.0)

"""Unit tests for devices, bridges and namespaces."""

import pytest

from repro.errors import TopologyError
from repro.net import (
    Bridge,
    HostloEndpoint,
    HostloTap,
    Loopback,
    NetworkNamespace,
    PhysicalNic,
    TapDevice,
    VethPair,
    VirtioNic,
    VxlanTunnel,
)
from repro.net.addresses import cidr, ip


class TestNetDevice:
    def test_assign_ip_and_owns(self):
        nic = VirtioNic("eth0")
        nic.assign_ip(ip("10.0.0.2"), cidr("10.0.0.0/24"))
        assert nic.owns_ip(ip("10.0.0.2"))
        assert not nic.owns_ip(ip("10.0.0.3"))
        assert nic.primary_ip == ip("10.0.0.2")
        assert nic.primary_network == cidr("10.0.0.0/24")

    def test_assign_ip_outside_network_rejected(self):
        nic = VirtioNic("eth0")
        with pytest.raises(TopologyError):
            nic.assign_ip(ip("10.0.1.2"), cidr("10.0.0.0/24"))

    def test_duplicate_ip_rejected(self):
        nic = VirtioNic("eth0")
        nic.assign_ip(ip("10.0.0.2"), cidr("10.0.0.0/24"))
        with pytest.raises(TopologyError):
            nic.assign_ip(ip("10.0.0.2"), cidr("10.0.0.0/24"))

    def test_empty_name_rejected(self):
        with pytest.raises(TopologyError):
            VirtioNic("")

    def test_bad_mtu_rejected(self):
        from repro.net.devices import NetDevice

        with pytest.raises(TopologyError):
            NetDevice("x", mtu=0)
        with pytest.raises(TopologyError):
            NetDevice("x", mtu=-1500)


class TestVeth:
    def test_pair_is_wired(self):
        pair = VethPair("a", "b")
        assert pair.a.peer is pair.b
        assert pair.b.peer is pair.a

    def test_same_names_rejected(self):
        with pytest.raises(TopologyError):
            VethPair("x", "x")


class TestVirtioAndTap:
    def test_attach_backend(self):
        nic, tap = VirtioNic("eth0"), TapDevice("tap0")
        nic.attach_backend(tap)
        assert nic.backend is tap
        assert tap.backs is nic

    def test_double_backend_rejected(self):
        nic, tap = VirtioNic("eth0"), TapDevice("tap0")
        nic.attach_backend(tap)
        with pytest.raises(TopologyError):
            nic.attach_backend(TapDevice("tap1"))

    def test_tap_backing_two_nics_rejected(self):
        tap = TapDevice("tap0")
        VirtioNic("eth0").attach_backend(tap)
        with pytest.raises(TopologyError):
            VirtioNic("eth1").attach_backend(tap)

    def test_physical_nic_bandwidth(self):
        nic = PhysicalNic("eno1", bandwidth_bps=10e9)
        assert nic.bandwidth_bps == 10e9
        with pytest.raises(TopologyError):
            PhysicalNic("eno2", bandwidth_bps=0)


class TestHostlo:
    def test_endpoint_has_no_gso(self):
        assert HostloEndpoint("hlo0").gso is False

    def test_add_queue_wires_backend(self):
        tap = HostloTap("hostlo0")
        ep1, ep2 = HostloEndpoint("hlo0"), HostloEndpoint("hlo1")
        tap.add_queue(ep1)
        tap.add_queue(ep2)
        assert tap.queue_count == 2
        assert ep1.backend is tap and ep2.backend is tap

    def test_duplicate_queue_rejected(self):
        tap = HostloTap("hostlo0")
        ep = HostloEndpoint("hlo0")
        tap.add_queue(ep)
        with pytest.raises(TopologyError):
            tap.add_queue(ep)


class TestVxlan:
    def test_vtep_longest_prefix(self):
        tun = VxlanTunnel("vx0", vni=42, underlay_ip=ip("192.168.122.11"))
        tun.add_remote(cidr("10.0.0.0/16"), ip("192.168.122.12"))
        tun.add_remote(cidr("10.0.5.0/24"), ip("192.168.122.13"))
        assert tun.vtep_for(ip("10.0.5.9")) == ip("192.168.122.13")
        assert tun.vtep_for(ip("10.0.9.9")) == ip("192.168.122.12")
        assert tun.vtep_for(ip("10.99.0.1")) is None

    def test_bad_vni_rejected(self):
        with pytest.raises(TopologyError):
            VxlanTunnel("vx0", vni=0, underlay_ip=ip("1.2.3.4"))


class TestBridge:
    def test_add_remove_ports(self):
        br = Bridge("br0")
        tap = TapDevice("tap0")
        br.add_port(tap)
        assert br.has_port(tap)
        assert tap.bridge is br
        br.remove_port(tap)
        assert not br.has_port(tap)
        assert tap.bridge is None

    def test_double_enslave_rejected(self):
        br1, br2 = Bridge("br0"), Bridge("br1")
        tap = TapDevice("tap0")
        br1.add_port(tap)
        with pytest.raises(TopologyError):
            br2.add_port(tap)
        with pytest.raises(TopologyError):
            br1.add_port(tap)

    def test_self_enslave_rejected(self):
        br = Bridge("br0")
        with pytest.raises(TopologyError):
            br.add_port(br)

    def test_remove_unknown_port_rejected(self):
        br = Bridge("br0")
        with pytest.raises(TopologyError):
            br.remove_port(TapDevice("tap0"))

    def test_fdb_learn_lookup(self):
        br = Bridge("br0")
        tap = TapDevice("tap0")
        br.add_port(tap)
        mac = __import__("repro.net.addresses", fromlist=["MacAddress"]).MacAddress(7)
        br.learn(mac, tap)
        assert br.lookup(mac) is tap
        assert br.fdb_size() == 1

    def test_fdb_flushed_on_port_removal(self):
        from repro.net.addresses import MacAddress

        br = Bridge("br0")
        tap = TapDevice("tap0")
        br.add_port(tap)
        br.learn(MacAddress(9), tap)
        br.remove_port(tap)
        assert br.lookup(MacAddress(9)) is None

    def test_learn_on_foreign_port_rejected(self):
        from repro.net.addresses import MacAddress

        br = Bridge("br0")
        with pytest.raises(TopologyError):
            br.learn(MacAddress(1), TapDevice("tap0"))

    def test_flood_excludes_ingress(self):
        br = Bridge("br0")
        taps = [TapDevice(f"tap{i}") for i in range(3)]
        for tap in taps:
            br.add_port(tap)
        flooded = list(br.flood_ports(ingress=taps[0]))
        assert taps[0] not in flooded and len(flooded) == 2


class TestNamespace:
    def test_loopback_created_by_default(self):
        ns = NetworkNamespace("host")
        assert isinstance(ns.loopback, Loopback)

    def test_guest_requires_domain(self):
        with pytest.raises(TopologyError):
            NetworkNamespace("g", kind="guest")
        ns = NetworkNamespace("g", kind="guest", domain="vm:g")
        assert ns.domain == "vm:g"

    def test_bad_kind_rejected(self):
        with pytest.raises(TopologyError):
            NetworkNamespace("x", kind="weird")  # type: ignore[arg-type]

    def test_attach_detach(self):
        ns = NetworkNamespace("host")
        nic = VirtioNic("eth0")
        ns.attach(nic)
        assert ns.device("eth0") is nic
        assert nic.namespace is ns
        ns.detach(nic)
        assert nic.namespace is None
        with pytest.raises(TopologyError):
            ns.device("eth0")

    def test_attach_moves_between_namespaces(self):
        ns1 = NetworkNamespace("a")
        ns2 = NetworkNamespace("b")
        nic = VirtioNic("eth0")
        ns1.attach(nic)
        ns2.attach(nic)  # implicit move — this is what BrFusion does
        assert nic.namespace is ns2
        assert "eth0" not in ns1.devices

    def test_duplicate_name_rejected(self):
        ns = NetworkNamespace("host")
        ns.attach(VirtioNic("eth0"))
        with pytest.raises(TopologyError):
            ns.attach(VirtioNic("eth0"))

    def test_detach_removes_routes(self):
        from repro.net.routing import Route

        ns = NetworkNamespace("host")
        nic = VirtioNic("eth0")
        ns.attach(nic)
        ns.routes.add(Route(cidr("10.0.0.0/24"), "eth0"))
        ns.detach(nic)
        assert ns.routes.lookup(ip("10.0.0.5")) is None

    def test_find_device_owning(self):
        ns = NetworkNamespace("host")
        nic = VirtioNic("eth0")
        nic.assign_ip(ip("10.0.0.2"), cidr("10.0.0.0/24"))
        ns.attach(nic)
        assert ns.find_device_owning(ip("10.0.0.2")) is nic
        assert ns.is_local(ip("10.0.0.2"))
        assert not ns.is_local(ip("10.0.0.9"))

"""Frame-level forwarding tests: the data plane cross-checks the resolver."""

import pytest

from repro.errors import TopologyError
from repro.net import resolve_path
from repro.net.addresses import ip
from repro.net.forwarding import ForwardingEngine


@pytest.fixture
def engine():
    return ForwardingEngine()


class TestDelivery:
    def test_nocont_frame_reaches_guest(self, engine, nocont_topo):
        delivery = engine.send(nocont_topo.client, ip("192.168.122.11"), 22)
        assert delivery.delivered
        assert delivery.namespace == "vm1"
        assert delivery.visited("bridge:virbr0")
        assert delivery.visited("tap:tap-vm1")

    def test_nat_frame_is_dnatted_into_container(self, engine, nat_topo):
        delivery = engine.send(nat_topo.client, ip("192.168.122.11"), 8080)
        assert delivery.delivered
        assert delivery.namespace == "cont1"
        assert delivery.dst_ip == ip("172.17.0.2")
        assert delivery.dst_port == 80
        assert delivery.visited("dnat:vm1")
        assert delivery.visited("bridge:docker0")

    def test_nat_unpublished_port_stops_in_guest(self, engine, nat_topo):
        delivery = engine.send(nat_topo.client, ip("192.168.122.11"), 9999)
        assert delivery.delivered
        assert delivery.namespace == "vm1"

    def test_brfusion_frame_skips_guest_bridge(self, engine, brfusion_topo):
        delivery = engine.send(brfusion_topo.client, ip("192.168.122.50"), 80)
        assert delivery.delivered
        assert delivery.namespace == "pod1"
        assert not delivery.visited("docker0")
        assert not delivery.visited("dnat")

    def test_hostlo_frame_reflected_to_all_queues(self, engine, hostlo_topo):
        delivery = engine.send(hostlo_topo.frag_a, ip("10.88.0.3"), 6379)
        assert delivery.delivered
        assert delivery.namespace == "pod1-b"
        assert delivery.reflected_copies == 2  # both VM queues get a copy
        assert delivery.visited("hostlo:hostlo0")

    def test_hostlo_unknown_ip_dropped(self, engine, hostlo_topo):
        delivery = engine.send(hostlo_topo.frag_a, ip("10.88.0.99"), 6379)
        assert not delivery.delivered
        assert delivery.visited("drop:hostlo-no-owner")

    def test_overlay_frame_encapsulated(self, engine, overlay_topo):
        delivery = engine.send(overlay_topo.cont_a, ip("10.0.9.3"), 6379)
        assert delivery.delivered
        assert delivery.namespace == "cont-b"
        assert delivery.visited("vxlan-encap")
        assert delivery.visited("vxlan-decap")
        assert delivery.visited("underlay:")  # rode the real underlay

    def test_no_route_dropped(self, engine, nocont_topo):
        delivery = engine.send(nocont_topo.guest, ip("203.0.113.9"), 80)
        # The guest has a default route to the host bridge; the host has
        # no route beyond — frame dies at the host router.
        assert not delivery.delivered
        assert delivery.visited("drop:no-route")

    def test_link_down_dropped(self, engine, nocont_topo):
        nocont_topo.client.device("eth0").up = False
        delivery = engine.send(nocont_topo.client, ip("192.168.122.11"), 22)
        assert not delivery.delivered
        assert delivery.visited("drop:link-down")

    def test_reverse_direction_works(self, engine, nat_topo):
        delivery = engine.send(nat_topo.cont, ip("192.168.122.100"), 4000)
        assert delivery.delivered
        assert delivery.namespace == "client"


class TestLearning:
    def test_second_frame_not_flooded(self, engine, nocont_topo):
        first = engine.send(nocont_topo.client, ip("192.168.122.11"), 22)
        assert first.flooded_ports > 0
        second = engine.send(nocont_topo.client, ip("192.168.122.11"), 22)
        assert second.flooded_ports == 0
        assert not second.visited("flood:")

    def test_fdb_populated_by_traffic(self, engine, nocont_topo):
        assert nocont_topo.bridge.fdb_size() == 0
        engine.send(nocont_topo.client, ip("192.168.122.11"), 22)
        assert nocont_topo.bridge.fdb_size() >= 1

    def test_learning_survives_both_directions(self, engine, nocont_topo):
        engine.send(nocont_topo.client, ip("192.168.122.11"), 22)
        back = engine.send(nocont_topo.guest, ip("192.168.122.100"), 4000)
        assert back.delivered
        # Reverse traffic learned the client MAC too.
        again = engine.send(nocont_topo.guest, ip("192.168.122.100"), 4000)
        assert again.flooded_ports == 0


class TestResolverAgreement:
    """The frame walk and the analytic resolver must agree."""

    CASES = [
        ("nocont_topo", "client", "192.168.122.11", 8080),
        ("nat_topo", "client", "192.168.122.11", 8080),
        ("brfusion_topo", "client", "192.168.122.50", 8080),
        ("hostlo_topo", "frag_a", "10.88.0.3", 6379),
        ("overlay_topo", "cont_a", "10.0.9.3", 6379),
    ]

    @pytest.mark.parametrize("fixture,src,dst,port",
                             CASES, ids=[c[0] for c in CASES])
    def test_same_destination_namespace(self, request, engine,
                                        fixture, src, dst, port):
        topo = request.getfixturevalue(fixture)
        src_ns = getattr(topo, src)
        path = resolve_path(src_ns, ip(dst), port)
        delivery = engine.send(src_ns, ip(dst), port)
        assert delivery.delivered
        # The resolver's final stage domain matches where the frame
        # actually landed.
        landed_domain = (
            "client" if delivery.namespace == "client"
            else path.stages[-1].domain
        )
        assert path.stages[-1].domain == landed_domain

    @pytest.mark.parametrize("fixture,src,dst,port",
                             CASES, ids=[c[0] for c in CASES])
    def test_structural_agreement(self, request, engine,
                                  fixture, src, dst, port):
        """Bridges/NAT/hostlo/vxlan seen by frames iff the resolver
        emitted the corresponding stages."""
        topo = request.getfixturevalue(fixture)
        src_ns = getattr(topo, src)
        path = resolve_path(src_ns, ip(dst), port)
        delivery = engine.send(src_ns, ip(dst), port)

        assert (path.count("netfilter_nat") > 0) == delivery.visited("dnat:") \
            or path.count("netfilter_nat") > 0  # masquerade has no frame-op
        assert (path.count("hostlo_reflect") > 0) == delivery.visited("hostlo:")
        assert (path.count("vxlan_encap") > 0) == delivery.visited("vxlan-encap")
        bridges_in_path = path.count("bridge_fwd")
        bridges_visited = sum(
            1 for hop in delivery.hops if hop.split(":")[0].endswith("bridge")
        )
        assert (bridges_in_path > 0) == (bridges_visited > 0)


class TestFrameGuards:
    def test_forwarding_loop_detected(self, engine, nocont_topo):
        # Create a routing loop: host routes a prefix back at the guest,
        # guest routes it to the host.
        from repro.net.routing import Route
        from repro.net.addresses import cidr

        nocont_topo.host.routes.add(
            Route(cidr("198.18.0.0/24"), "virbr0")
        )
        nocont_topo.guest.routes.add(
            Route(cidr("198.18.0.0/24"), "eth0", ip("192.168.122.1"))
        )
        with pytest.raises(TopologyError):
            engine.send(nocont_topo.guest, ip("198.18.0.7"), 80)

    def test_source_address_required(self, engine):
        from repro.net.namespace import NetworkNamespace

        empty = NetworkNamespace("empty", with_loopback=False)
        with pytest.raises(TopologyError):
            engine.send(empty, ip("10.0.0.1"), 80)


class TestDropAccounting:
    """Every ``drop:*`` note lands in the engine ledger and in the
    ``net.frames_dropped{reason=...}`` labelled counter."""

    def test_delivery_and_drop_counters(self, nocont_topo, hostlo_topo):
        from repro import obs

        with obs.capture() as (_tracer, metrics):
            eng = ForwardingEngine()
            eng.send(nocont_topo.client, ip("192.168.122.11"), 22)
            eng.send(hostlo_topo.frag_a, ip("10.88.0.99"), 6379)
            assert metrics.counter("net.frames_sent").value() == 2
            assert metrics.counter("net.frames_delivered").value() == 1
            dropped = metrics.counter("net.frames_dropped")
            assert dropped.value(reason="hostlo-no-owner") == 1
        assert eng.frames_sent == 2
        assert eng.frames_delivered == 1
        assert eng.drops == {"hostlo-no-owner": 1}

    def test_link_down_drop_reason_labelled(self, engine, nocont_topo):
        from repro import obs

        with obs.capture() as (_tracer, metrics):
            eng = ForwardingEngine()
            delivery = eng.send(nocont_topo.client, ip("203.0.113.9"), 80)
            assert not delivery.delivered
            assert sum(eng.drops.values()) == 1
            (reason,) = eng.drops
            assert metrics.counter("net.frames_dropped").value(
                reason=reason
            ) == 1

    def test_ledger_reset(self, nocont_topo):
        eng = ForwardingEngine()
        eng.send(nocont_topo.client, ip("192.168.122.11"), 22)
        eng.reset_ledger()
        assert eng.frames_sent == 0
        assert eng.frames_delivered == 0
        assert eng.drops == {}

"""Capture taps and frame provenance: trails, filters, reconciliation.

The headline assertions live here: a NAT-path delivery and a
BrFusion-path delivery of the same pod flow produce provenance chains
with strictly fewer hops for BrFusion (the paper's Fig. 1 story), a
3-queue hostlo reflection is one provenance hop (not three), and an
untapped run never enters the capture path at all.
"""

import pytest

from repro.errors import ConfigurationError
from repro.net import capture
from repro.net.addresses import cidr, ip
from repro.net.capture import (
    CaptureFilter,
    CaptureSession,
    _PacketView,
)
from repro.net.devices import HostloEndpoint
from repro.net.forwarding import ForwardingEngine
from repro.net.inspect import trace_frame
from repro.net.namespace import NetworkNamespace

from .conftest import mac


@pytest.fixture
def engine():
    return ForwardingEngine()


def view(src="192.168.122.100", dst="192.168.122.11", proto="tcp",
         sport=33001, dport=8080, device="eth0"):
    return _PacketView(
        src_ip=ip(src), dst_ip=ip(dst), proto=proto,
        src_port=sport, dst_port=dport, device=device,
    )


class TestCaptureFilter:
    def test_empty_matches_everything(self):
        assert CaptureFilter("").matches(view())

    def test_host_matches_either_direction(self):
        f = CaptureFilter("host 192.168.122.11")
        assert f.matches(view(dst="192.168.122.11"))
        assert f.matches(view(src="192.168.122.11", dst="10.0.0.1"))
        assert not f.matches(view(src="10.0.0.1", dst="10.0.0.2"))

    def test_net_matches_cidr(self):
        f = CaptureFilter("net 172.17.0.0/16")
        assert f.matches(view(dst="172.17.0.2"))
        assert not f.matches(view())

    def test_proto_and_port(self):
        f = CaptureFilter("proto udp and port 53")
        assert f.matches(view(proto="udp", dport=53))
        assert not f.matches(view(proto="tcp", dport=53))
        assert not f.matches(view(proto="udp", dport=80))

    def test_dev_glob(self):
        f = CaptureFilter("dev 'tap-*'")
        assert f.matches(view(device="tap-vm1"))
        assert not f.matches(view(device="eth0"))

    def test_or_not_and_parens(self):
        f = CaptureFilter(
            "(host 10.0.0.1 or host 10.0.0.2) and not proto udp"
        )
        assert f.matches(view(dst="10.0.0.1", proto="tcp"))
        assert not f.matches(view(dst="10.0.0.1", proto="udp"))
        assert not f.matches(view(dst="10.0.0.9", proto="tcp"))

    @pytest.mark.parametrize("expr", [
        "bogus 1", "host", "port nine", "(host 10.0.0.1",
        "host 10.0.0.1 extra",
    ])
    def test_bad_expressions_rejected(self, expr):
        with pytest.raises(ConfigurationError):
            CaptureFilter(expr)


class TestUntappedFastPath:
    def test_no_session_means_no_trail(self, engine, nocont_topo):
        delivery = engine.send(nocont_topo.client, ip("192.168.122.11"), 22)
        assert delivery.delivered
        assert delivery.trail == ()
        assert delivery.frame_id == 0

    def test_capture_path_never_entered(self, engine, nocont_topo,
                                        monkeypatch):
        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("capture path entered without a session")

        monkeypatch.setattr(CaptureSession, "begin_frame", boom)
        monkeypatch.setattr(CaptureSession, "hop", boom)
        delivery = engine.send(nocont_topo.client, ip("192.168.122.11"), 22)
        assert delivery.delivered


class TestProvenanceTrails:
    def test_trail_formalizes_the_notes(self, engine, nat_topo):
        with capture.use(CaptureSession()):
            delivery = engine.send(nat_topo.client,
                                   ip("192.168.122.11"), 8080)
        assert delivery.delivered
        assert delivery.frame_id == 1
        stages = [hop.stage for hop in delivery.trail]
        assert "dnat" in stages
        assert stages[-1] == "deliver"
        assert delivery.trail[-1].verdict == "delivered"
        devices = [hop.device for hop in delivery.trail]
        assert "docker0" in devices
        assert "nf:vm1:dnat" in devices

    def test_timestamps_strictly_monotonic(self, engine, nat_topo):
        with capture.use(CaptureSession()) as session:
            engine.send(nat_topo.client, ip("192.168.122.11"), 8080)
            engine.send(nat_topo.client, ip("192.168.122.11"), 8080)
        stamps = [hop.ts for trail in session.trails().values()
                  for hop in trail]
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == len(stamps)

    def test_drop_hop_carries_reason(self, engine, nocont_topo):
        with capture.use(CaptureSession()):
            delivery = engine.send(nocont_topo.client, ip("203.0.113.9"), 80)
        assert not delivery.delivered
        last = delivery.trail[-1]
        assert last.verdict == "dropped"
        assert last.reason == "no-route"

    def test_nat_vs_brfusion_hop_counts(self, engine, nat_topo,
                                        brfusion_topo):
        with capture.use(CaptureSession()):
            nat = engine.send(nat_topo.client, ip("192.168.122.11"), 8080)
            brf = engine.send(brfusion_topo.client, ip("192.168.122.50"), 80)
        assert nat.delivered and brf.delivered
        # The paper's Fig. 1 story, now measurable: the NAT path crosses
        # the guest's extra bridge and netfilter hook, BrFusion does not.
        assert len(brf.trail) < len(nat.trail)

    def test_trace_frame_renders_trail(self, engine, nat_topo):
        with capture.use(CaptureSession()) as session:
            delivery = engine.send(nat_topo.client,
                                   ip("192.168.122.11"), 8080)
        text = trace_frame(delivery, session)
        assert "frame #1" in text
        assert "delivered" in text
        assert "dnat" in text

    def test_trace_frame_falls_back_to_notes(self, engine, nocont_topo):
        delivery = engine.send(nocont_topo.client, ip("192.168.122.11"), 22)
        text = trace_frame(delivery)
        assert "bridge:virbr0" in text
        assert "delivered" in text


class TestHostloDedupe:
    @pytest.fixture
    def three_queue_topo(self, hostlo_topo):
        """The fixture's 2-queue hostlo tap, grown to 3 queues."""
        frag_c = NetworkNamespace("pod1-c", kind="container",
                                  domain=hostlo_topo.guest_b.domain)
        ep_c = HostloEndpoint("hlo0c", mac())
        ep_c.assign_ip(ip("10.88.0.4"), cidr("10.88.0.0/24"))
        hostlo_topo.hostlo.add_queue(ep_c)
        frag_c.attach(ep_c)
        frag_c.routes.add_on_link(cidr("10.88.0.0/24"), "hlo0c")
        hostlo_topo.frag_c = frag_c
        return hostlo_topo

    def test_reflection_is_one_hop_not_three(self, engine, three_queue_topo):
        with capture.use(CaptureSession()):
            delivery = engine.send(three_queue_topo.frag_a,
                                   ip("10.88.0.3"), 6379)
        assert delivery.delivered
        assert delivery.reflected_copies == 3  # the copies are real...
        reflects = [hop for hop in delivery.trail
                    if hop.stage == "hostlo-reflect"]
        assert len(reflects) == 1  # ...the provenance hop is deduped
        assert reflects[0].verdict == "reflected"
        assert reflects[0].device == "hostlo0"

    def test_tapped_hostlo_captures_frame_once(self, engine,
                                               three_queue_topo):
        with capture.use(CaptureSession()) as session:
            point = session.tap(three_queue_topo.hostlo)
            engine.send(three_queue_topo.frag_a, ip("10.88.0.3"), 6379)
        assert point.packet_count == 1


class TestVxlanCapture:
    def test_encap_decap_paired_on_tunnel_devices(self, engine,
                                                  overlay_topo):
        with capture.use(CaptureSession()) as session:
            delivery = engine.send(overlay_topo.cont_a, ip("10.0.9.3"),
                                   9000, proto="udp", payload_bytes=200)
        assert delivery.delivered
        encaps = [h for h in delivery.trail if h.verdict == "encapped"]
        decaps = [h for h in delivery.trail if h.verdict == "decapped"]
        assert len(encaps) == len(decaps) == 1
        assert encaps[0].device == "vx-vm1"
        assert decaps[0].device == "vx-vm2"
        # The outer frame got its own trail, parented to the inner one.
        children = session.children_of(delivery.frame_id)
        assert len(children) == 1
        outer_trail = session.trail_of(children[0])
        assert outer_trail  # walked the underlay
        assert any(h.device == "virbr0" for h in outer_trail)

    def test_trace_frame_shows_encapsulated_child(self, engine,
                                                  overlay_topo):
        with capture.use(CaptureSession()) as session:
            delivery = engine.send(overlay_topo.cont_a, ip("10.0.9.3"), 9000)
        text = trace_frame(delivery, session)
        assert "encapsulated frame #" in text


class TestTapsAndPackets:
    def test_only_tapped_devices_capture(self, engine, nat_topo):
        with capture.use(CaptureSession()) as session:
            tapped = session.tap("docker0")
            engine.send(nat_topo.client, ip("192.168.122.11"), 8080)
        assert tapped.packet_count == 1
        assert len(session.points()) == 1

    def test_promiscuous_taps_every_device(self, engine, nat_topo):
        with capture.use(CaptureSession(promiscuous=True)) as session:
            engine.send(nat_topo.client, ip("192.168.122.11"), 8080)
        names = [p.name for p in session.points()]
        assert "virbr0" in names
        assert "docker0" in names
        assert not any(name.startswith("nf:") for name in names)

    def test_point_filter_is_selective(self, engine, nat_topo):
        with capture.use(CaptureSession()) as session:
            hit = session.tap("virbr0", filter="port 8080")
            miss = session.tap("docker0", filter="proto udp")
            engine.send(nat_topo.client, ip("192.168.122.11"), 8080)
        assert hit.packet_count == 1
        assert miss.packet_count == 0

    def test_hook_tap_sees_pre_dnat_address(self, engine, nat_topo):
        with capture.use(CaptureSession()) as session:
            point = session.tap_hook("vm1", "dnat")
            engine.send(nat_topo.client, ip("192.168.122.11"), 8080)
        assert point.packet_count == 1
        # The hook snapshot precedes the rewrite — like a PREROUTING
        # tap, it sees the address the client dialled.
        assert point.packets[0].dst_ip == ip("192.168.122.11").value
        assert point.packets[0].dst_port == 8080


class TestLedgerReconciliation:
    def test_session_agrees_with_engine(self, engine, nocont_topo):
        with capture.use(CaptureSession()) as session:
            engine.send(nocont_topo.client, ip("192.168.122.11"), 22)
            engine.send(nocont_topo.client, ip("203.0.113.9"), 80)  # no route
        assert session.ledger() == (2, 1, {"no-route": 1})
        assert session.reconcile(engine) == []

    def test_partial_session_is_flagged(self, engine, nocont_topo):
        engine.send(nocont_topo.client, ip("192.168.122.11"), 22)
        with capture.use(CaptureSession()) as session:
            engine.send(nocont_topo.client, ip("192.168.122.11"), 22)
        problems = session.reconcile(engine)
        assert any("1 frames" in p and "2" in p for p in problems)

    def test_engine_pinned_session_wins_over_global(self, engine,
                                                    nocont_topo):
        pinned = CaptureSession()
        engine.capture = pinned
        with capture.use(CaptureSession()) as ambient:
            delivery = engine.send(nocont_topo.client,
                                   ip("192.168.122.11"), 22)
        assert delivery.trail
        assert pinned.frames_seen == 1
        assert ambient.frames_seen == 0

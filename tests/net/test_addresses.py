"""Unit and property tests for MAC/IPv4 addressing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AddressExhaustedError, TopologyError
from repro.net.addresses import (
    BROADCAST_MAC,
    HostAllocator,
    Ipv4Address,
    Ipv4Network,
    MacAddress,
    MacAllocator,
    SubnetAllocator,
    cidr,
    ip,
)


class TestMacAddress:
    def test_parse_roundtrip(self):
        mac = MacAddress.parse("52:54:00:12:34:56")
        assert str(mac) == "52:54:00:12:34:56"

    def test_parse_rejects_bad_forms(self):
        for bad in ("", "52:54:00", "zz:54:00:12:34:56", "52:54:00:12:34:567:89"):
            with pytest.raises(TopologyError):
                MacAddress.parse(bad)

    def test_out_of_range_rejected(self):
        with pytest.raises(TopologyError):
            MacAddress(2**48)
        with pytest.raises(TopologyError):
            MacAddress(-1)

    def test_broadcast_flags(self):
        assert BROADCAST_MAC.is_multicast

    def test_ordering(self):
        assert MacAddress(1) < MacAddress(2)

    @given(st.integers(min_value=0, max_value=2**48 - 1))
    def test_str_parse_roundtrip_property(self, value):
        mac = MacAddress(value)
        assert MacAddress.parse(str(mac)) == mac


class TestIpv4Address:
    def test_parse_roundtrip(self):
        assert str(ip("192.168.122.1")) == "192.168.122.1"

    def test_parse_rejects_bad_forms(self):
        for bad in ("", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d"):
            with pytest.raises(TopologyError):
                Ipv4Address.parse(bad)

    def test_ordering(self):
        assert ip("10.0.0.1") < ip("10.0.0.2")

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_str_parse_roundtrip_property(self, value):
        addr = Ipv4Address(value)
        assert Ipv4Address.parse(str(addr)) == addr


class TestIpv4Network:
    def test_contains(self):
        net = cidr("10.0.0.0/24")
        assert ip("10.0.0.200") in net
        assert ip("10.0.1.1") not in net
        assert "not-an-ip" not in net

    def test_host_bits_rejected(self):
        with pytest.raises(TopologyError):
            cidr("10.0.0.1/24")

    def test_bad_prefix_rejected(self):
        with pytest.raises(TopologyError):
            Ipv4Network(ip("10.0.0.0"), 33)

    def test_host_indexing(self):
        net = cidr("10.0.0.0/24")
        assert net.host(1) == ip("10.0.0.1")
        assert net.host(254) == ip("10.0.0.254")
        with pytest.raises(AddressExhaustedError):
            net.host(255)  # broadcast
        with pytest.raises(AddressExhaustedError):
            net.host(0)  # network address

    def test_num_hosts(self):
        assert cidr("10.0.0.0/24").num_hosts == 254
        assert cidr("10.0.0.0/30").num_hosts == 2

    def test_hosts_iterator(self):
        hosts = list(cidr("10.0.0.0/30").hosts())
        assert hosts == [ip("10.0.0.1"), ip("10.0.0.2")]

    def test_str(self):
        assert str(cidr("172.17.0.0/16")) == "172.17.0.0/16"

    @given(st.integers(min_value=0, max_value=2**32 - 1),
           st.integers(min_value=8, max_value=30))
    def test_network_contains_own_hosts_property(self, value, plen):
        mask = ((1 << plen) - 1) << (32 - plen)
        net = Ipv4Network(Ipv4Address(value & mask), plen)
        assert net.host(1) in net
        assert net.host(net.num_hosts) in net


class TestAllocators:
    def test_mac_allocator_unique(self):
        alloc = MacAllocator()
        macs = {alloc.allocate() for _ in range(100)}
        assert len(macs) == 100

    def test_mac_allocator_locally_administered(self):
        assert MacAllocator().allocate().is_locally_administered

    def test_subnet_allocator(self):
        alloc = SubnetAllocator(cidr("10.200.0.0/16"), 24)
        first = alloc.allocate()
        second = alloc.allocate()
        assert str(first) == "10.200.0.0/24"
        assert str(second) == "10.200.1.0/24"

    def test_subnet_allocator_exhaustion(self):
        alloc = SubnetAllocator(cidr("10.0.0.0/30"), 30)
        alloc.allocate()
        with pytest.raises(AddressExhaustedError):
            alloc.allocate()

    def test_subnet_allocator_rejects_larger_child(self):
        with pytest.raises(TopologyError):
            SubnetAllocator(cidr("10.0.0.0/24"), 16)

    def test_host_allocator_starts_at_two(self):
        alloc = HostAllocator(cidr("10.0.0.0/24"))
        assert alloc.allocate() == ip("10.0.0.2")
        assert alloc.allocate() == ip("10.0.0.3")

    def test_host_allocator_exhaustion(self):
        alloc = HostAllocator(cidr("10.0.0.0/30"))
        alloc.allocate()
        with pytest.raises(AddressExhaustedError):
            alloc.allocate()

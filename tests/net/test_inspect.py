"""Tests for the topology inspection helpers."""

from repro.core import DeploymentMode, build_scenario
from repro.core.testbed import default_testbed
from repro.net.inspect import (
    describe_device,
    describe_namespace,
    describe_testbed,
)


def test_device_lines_cover_wiring(nat_topo):
    guest_eth0 = nat_topo.guest.device("eth0")
    line = describe_device(guest_eth0)
    assert "eth0" in line and "virtio" in line and "backend=tap-vm1" in line

    bridge_line = describe_device(nat_topo.bridge)
    assert "ports=[" in bridge_line and "virbr0" in bridge_line


def test_down_device_marked(nat_topo):
    dev = nat_topo.client.device("eth0")
    dev.up = False
    assert "DOWN" in describe_device(dev)


def test_namespace_block_lists_rules(nat_topo):
    block = describe_namespace(nat_topo.guest)
    assert "namespace vm1" in block
    assert "dnat  tcp/8080" in block
    assert "masq  172.17.0.0/16" in block
    assert "route 172.17.0.0/16 dev docker0" in block


def test_hostlo_queues_visible(hostlo_topo):
    block = describe_namespace(hostlo_topo.host)
    assert "queues=[hlo0,hlo0b]" in block


def test_testbed_description_covers_everything():
    tb = default_testbed(seed=2, vms=2)
    build_scenario(tb, DeploymentMode.HOSTLO)
    text = describe_testbed(tb)
    assert "namespace host" in text
    assert "namespace client" in text
    assert "namespace vm0" in text
    assert "pod:" in text  # fragment namespaces
    assert "hostlo" in text

"""Tests for the topology inspection helpers."""

import pytest

from repro.core import DeploymentMode, build_scenario
from repro.core.testbed import default_testbed
from repro.net import Loopback, NetDevice, PhysicalNic
from repro.net.addresses import MacAllocator
from repro.net.links import PhysicalLink
from repro.net.inspect import (
    describe_device,
    describe_namespace,
    describe_testbed,
    describe_topology,
)


def test_device_lines_cover_wiring(nat_topo):
    guest_eth0 = nat_topo.guest.device("eth0")
    line = describe_device(guest_eth0)
    assert "eth0" in line and "virtio" in line and "backend=tap-vm1" in line

    bridge_line = describe_device(nat_topo.bridge)
    assert "ports=[" in bridge_line and "virbr0" in bridge_line


def test_down_device_marked(nat_topo):
    dev = nat_topo.client.device("eth0")
    dev.up = False
    assert "DOWN" in describe_device(dev)


def test_namespace_block_lists_rules(nat_topo):
    block = describe_namespace(nat_topo.guest)
    assert "namespace vm1" in block
    assert "dnat  tcp/8080" in block
    assert "masq  172.17.0.0/16" in block
    assert "route 172.17.0.0/16 dev docker0" in block


def test_hostlo_queues_visible(hostlo_topo):
    block = describe_namespace(hostlo_topo.host)
    assert "queues=[hlo0,hlo0b]" in block


class TestEveryDeviceKind:
    """describe_device renders every device kind without raising."""

    def test_veth_shows_peer(self, nat_topo):
        line = describe_device(nat_topo.cont.device("eth0"))
        assert "<veth>" in line and "peer=veth-cont1@vm1" in line

    def test_virtio_shows_backend(self, nat_topo):
        line = describe_device(nat_topo.guest.device("eth0"))
        assert "<virtio>" in line and "backend=tap-vm1" in line

    def test_tap_shows_backing_and_bridge(self, nat_topo):
        line = describe_device(nat_topo.host.device("tap-vm1"))
        assert "<tap>" in line
        assert "backs=eth0" in line and "bridge=virbr0" in line

    def test_bridge_lists_ports(self, nat_topo):
        line = describe_device(nat_topo.bridge)
        assert "<bridge>" in line and "ports=[" in line

    def test_hostlo_tap_lists_queues(self, hostlo_topo):
        line = describe_device(hostlo_topo.hostlo)
        assert "<hostlo_tap>" in line and "queues=[hlo0,hlo0b]" in line

    def test_hostlo_endpoint_names_its_tap(self, hostlo_topo):
        line = describe_device(hostlo_topo.frag_a.device("hlo0"))
        assert "<hostlo_endpoint>" in line and "hostlo=hostlo0" in line

    def test_vxlan_shows_vni_and_underlay(self, overlay_topo):
        line = describe_device(overlay_topo.guest_a.device("vx-vm1"))
        assert "<vxlan>" in line
        assert "vni=256" in line and "underlay=192.168.122.11" in line

    def test_physical_nic_plain_and_cabled(self):
        macs = MacAllocator(oui=0x02BB00)
        nic_a = PhysicalNic("eth0", macs.allocate())
        nic_b = PhysicalNic("eth1", macs.allocate())
        assert "<physical>" in describe_device(nic_a)  # uncabled: no link
        PhysicalLink("wire0", nic_a, nic_b)
        assert "link=wire0" in describe_device(nic_a)

    def test_loopback(self):
        line = describe_device(Loopback())
        assert line.startswith("lo <loopback>")

    def test_generic_device(self):
        assert "<generic>" in describe_device(NetDevice("dev0"))

    @pytest.mark.parametrize(
        "mode",
        [
            DeploymentMode.NAT,
            DeploymentMode.BRFUSION,
            DeploymentMode.HOSTLO,
            DeploymentMode.OVERLAY,
            DeploymentMode.SAMENODE,
            DeploymentMode.NOCONT,
        ],
    )
    def test_whole_scenario_renders(self, mode):
        """Every production-built topology describes without raising."""
        tb = default_testbed(seed=5, vms=2)
        build_scenario(tb, mode)
        text = describe_testbed(tb)
        assert "namespace host" in text


def test_describe_topology_orders_blocks(nat_topo):
    text = describe_topology([nat_topo.guest, nat_topo.client])
    assert text.index("namespace vm1") < text.index("namespace client")


def test_testbed_description_covers_everything():
    tb = default_testbed(seed=2, vms=2)
    build_scenario(tb, DeploymentMode.HOSTLO)
    text = describe_testbed(tb)
    assert "namespace host" in text
    assert "namespace client" in text
    assert "namespace vm0" in text
    assert "pod:" in text  # fragment namespaces
    assert "hostlo" in text

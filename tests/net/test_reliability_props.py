"""Property tests: frame conservation and exactly-once under random
topologies and random loss plans."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import faults
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.harness.reliability import WireRig
from repro.health import HealthScope, run_checks
from repro.net import ArqConfig
from repro.net.forwarding import ForwardingEngine
from repro.sim import Environment
from repro.virt import PhysicalHost, Vmm

probabilities = st.floats(min_value=0.0, max_value=0.5)


def plan_from(loss, corrupt, bridge_drop):
    return FaultPlan(specs=(
        FaultSpec(kind="link.loss", target="*", probability=loss),
        FaultSpec(kind="link.corrupt", target="*", probability=corrupt),
        FaultSpec(kind="frame.drop", target="*", probability=bridge_drop),
    ))


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    loss=probabilities,
    corrupt=st.floats(min_value=0.0, max_value=0.2),
    messages=st.integers(min_value=1, max_value=25),
    window=st.integers(min_value=1, max_value=8),
)
def test_arq_conserves_and_delivers_exactly_once(
    seed, loss, corrupt, messages, window
):
    """Every ARQ transmission ends delivered, duplicate or labelled
    lost; no message id reaches the application twice; with a generous
    retry budget and bounded loss the batch converges."""
    rig = WireRig(seed=seed)
    transfer = rig.engine.reliable_transfer(
        rig.path, 1448, messages=messages,
        config=ArqConfig(window=window, max_retries=40),
        rng=rig.host_a.rng.stream("arq"),
        ack_path=rig.ack_path, links=(rig.link,),
    )
    with faults.use(rig.injector(plan_from(loss, corrupt, 0.0))):
        report = transfer.run()

    assert report.conserved()
    assert report.exactly_once
    assert report.delivered_ids <= set(range(messages))
    assert report.complete  # (1 - 0.5)**41 exhaustion odds: negligible
    # The invariant checker agrees.
    assert not run_checks(HealthScope.of(
        vmms=(rig.vmm_a, rig.vmm_b), arq_reports=(report,)
    ))


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    loss=probabilities,
    corrupt=st.floats(min_value=0.0, max_value=0.2),
    bridge_drop=st.floats(min_value=0.0, max_value=0.3),
    vms_per_host=st.integers(min_value=1, max_value=2),
    sends=st.lists(
        st.tuples(st.integers(min_value=0, max_value=3),
                  st.integers(min_value=0, max_value=3)),
        min_size=1, max_size=40,
    ),
)
def test_forwarding_ledger_conserved_on_random_topologies(
    seed, loss, corrupt, bridge_drop, vms_per_host, sends
):
    """sent == delivered + sum of labelled drops, for any topology and
    any loss plan — including frames that die at bridges mid-path."""
    env = Environment()
    host_a = PhysicalHost(env, name="alpha", seed=seed)
    host_b = PhysicalHost(env, name="beta", seed=seed + 1)
    vmm_a, vmm_b = Vmm(host_a), Vmm(host_b)
    vms = [vmm_a.create_vm(f"a{i}") for i in range(vms_per_host)]
    host_b._host_allocators["virbr0"]._next = 100
    vms += [vmm_b.create_vm(f"b{i}") for i in range(vms_per_host)]
    from repro.net.links import connect_hosts

    connect_hosts("prop-wire", host_a, host_b)

    engine = ForwardingEngine()
    injector = FaultInjector(
        plan_from(loss, corrupt, bridge_drop),
        host_a.rng.stream("faults"), now_fn=lambda: env.now,
    )
    with faults.use(injector):
        for src_index, dst_index in sends:
            src = vms[src_index % len(vms)]
            dst = vms[dst_index % len(vms)]
            engine.send(src.ns, dst.primary_nic.primary_ip, 22)

    assert engine.frames_sent == len(sends)
    assert (engine.frames_sent
            == engine.frames_delivered + sum(engine.drops.values()))
    assert not run_checks(HealthScope.of(
        vmms=(vmm_a, vmm_b), forwarding=engine,
    ))

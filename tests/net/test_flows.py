"""Flow accounting: aggregation, drop attribution, metrics export.

The acceptance-level assertion lives here: under the lossy fault plan
(``examples/faults_lossy.json``), the flow table's drop totals equal
the forwarding engine's conservation-ledger drops, reason for reason.
"""

import pathlib

import pytest

from repro import faults
from repro.faults import FaultInjector, FaultPlan
from repro.net import capture, flows
from repro.net.addresses import ip
from repro.net.capture import CaptureSession
from repro.net.flows import FlowKey, FlowTable
from repro.net.forwarding import ForwardingEngine
from repro.obs.metrics import MetricsRegistry
from repro.sim import Environment
from repro.virt import PhysicalHost, Vmm

LOSSY_PLAN = pathlib.Path(__file__).parents[2] / "examples" / "faults_lossy.json"


@pytest.fixture
def engine():
    return ForwardingEngine()


class TestFlowAggregation:
    def test_frames_and_bytes_accumulate(self, engine, nocont_topo):
        with flows.use(FlowTable()) as table:
            for _ in range(3):
                engine.send(nocont_topo.client, ip("192.168.122.11"), 22,
                            payload_bytes=100)
        assert len(table) == 1
        (key, stats), = table.items()
        assert key == FlowKey("192.168.122.100", "192.168.122.11",
                              "tcp", 22, "client")
        assert stats.frames == 3
        assert stats.bytes == 300
        assert stats.delivered == 3
        assert stats.dst_label == "vm:vm1"

    def test_flow_keyed_by_dialled_address_not_dnat(self, engine, nat_topo):
        with flows.use(FlowTable()) as table:
            engine.send(nat_topo.client, ip("192.168.122.11"), 8080)
        (key, stats), = table.items()
        # DNAT rewrote the frame to 172.17.0.2:80 mid-walk; the flow
        # stays keyed by what the sender dialled.
        assert key.dst_ip == "192.168.122.11"
        assert key.dst_port == 8080
        assert stats.dst_label == "vm:vm1"  # the pod's billing domain

    def test_hop_count_recorded_without_capture(self, engine,
                                                brfusion_topo):
        with flows.use(FlowTable()) as table:
            engine.send(brfusion_topo.client, ip("192.168.122.50"), 80)
        (_, stats), = table.items()
        assert stats.hop_counts.count() == 1

    def test_hop_latency_needs_a_capture_trail(self, engine, nat_topo):
        with flows.use(FlowTable()) as table:
            with capture.use(CaptureSession()):
                engine.send(nat_topo.client, ip("192.168.122.11"), 8080)
        (_, stats), = table.items()
        assert stats.hop_latency.count() > 0

    def test_vxlan_outer_frames_excluded_from_byte_counts(
            self, engine, overlay_topo):
        with flows.use(FlowTable()) as table:
            engine.send(overlay_topo.cont_a, ip("10.0.9.3"), 9000,
                        proto="udp", payload_bytes=200)
        assert len(table) == 1  # the outer 4789/udp frame is not a flow
        assert table.total_bytes() == 200  # not 200 + 50 encap overhead
        assert table.total_frames() == 1


class TestDropAttribution:
    def test_drop_reason_lands_in_the_flow(self, engine, nocont_topo):
        with flows.use(FlowTable()) as table:
            engine.send(nocont_topo.client, ip("203.0.113.9"), 80)
        (_, stats), = table.items()
        assert stats.drops == {"no-route": 1}
        assert stats.delivered == 0
        assert stats.top_drop_reason() == "no-route:1"

    def test_lossy_run_reconciles_with_engine_ledger(self, engine):
        """Flow drop totals == forwarding ledger drops, reason by
        reason, under examples/faults_lossy.json."""
        env = Environment()
        host_a = PhysicalHost(env, name="alpha", seed=7)
        host_b = PhysicalHost(env, name="beta", seed=8)
        vmm_a, vmm_b = Vmm(host_a), Vmm(host_b)
        vm_a = vmm_a.create_vm("vm-a")
        host_b._host_allocators["virbr0"]._next = 100
        vm_b = vmm_b.create_vm("vm-b")
        from repro.net.links import connect_hosts

        connect_hosts("lossy-wire", host_a, host_b)

        plan = FaultPlan.load(LOSSY_PLAN)
        injector = FaultInjector(plan, host_a.rng.stream("faults"),
                                 now_fn=lambda: env.now)
        table = FlowTable()
        with faults.use(injector), flows.use(table):
            for _ in range(200):
                engine.send(vm_a.ns, vm_b.primary_nic.primary_ip, 9000)
        assert engine.drops  # the lossy plan actually bit
        assert table.drop_totals() == engine.drops
        assert (table.total_frames()
                == engine.frames_delivered + sum(engine.drops.values()))


class TestExportAndRendering:
    def test_export_metrics_carries_labels(self, engine, nocont_topo):
        registry = MetricsRegistry()
        with flows.use(FlowTable()) as table:
            engine.send(nocont_topo.client, ip("192.168.122.11"), 22)
            engine.send(nocont_topo.client, ip("203.0.113.9"), 80)
        table.export_metrics(registry)
        frames = registry.get("flows.frames_total")
        assert frames.value(src="192.168.122.100", dst="192.168.122.11",
                            proto="tcp", port=22, pod="client") == 1
        dropped = registry.get("flows.frames_dropped")
        assert dropped.value(src="192.168.122.100", dst="203.0.113.9",
                             proto="tcp", port=80, pod="client",
                             reason="no-route") == 1
        assert registry.get("flows.active").value() == 2.0

    def test_top_flows_ranks_by_bytes(self, engine, nocont_topo):
        with flows.use(FlowTable()) as table:
            engine.send(nocont_topo.client, ip("192.168.122.11"), 22,
                        payload_bytes=1000)
            engine.send(nocont_topo.client, ip("192.168.122.11"), 80,
                        payload_bytes=10)
        text = table.top_flows()
        assert "top 2 of 2 flows" in text
        lines = text.splitlines()
        assert ":22/" in lines[3]  # heaviest flow first
        assert ":80/" in lines[4]

    def test_top_flows_empty(self):
        assert FlowTable().top_flows() == "(no flows recorded)"

    def test_engine_pinned_table_wins_over_global(self, engine,
                                                  nocont_topo):
        pinned = FlowTable()
        engine.flows = pinned
        with flows.use(FlowTable()) as ambient:
            engine.send(nocont_topo.client, ip("192.168.122.11"), 22)
        assert len(pinned) == 1
        assert len(ambient) == 0


class TestRollup:
    def fill(self, table):
        rows = [
            ("10.0.0.1", "10.1.0.1", 1, "cl-a", "cl-x", True, None),
            ("10.0.0.1", "10.1.0.2", 2, "cl-a", "cl-y", True, None),
            ("10.0.1.1", "10.1.0.1", 3, "cl-b", None, False, "link-loss"),
            ("10.0.1.1", "10.1.0.1", 3, "cl-b", None, False, "corrupt"),
            ("10.0.1.1", "10.1.0.1", 3, "cl-b", None, False, "corrupt"),
        ]
        for src, dst, port, src_label, dst_label, ok, reason in rows:
            table.record(
                FlowKey(src, dst, "tcp", port, src_label),
                payload_bytes=100, delivered=ok, drop_reason=reason,
                dst_label=dst_label, trail=(), hop_count=3,
            )
        return table

    def test_rollup_by_source_label(self):
        grouped = self.fill(FlowTable()).rollup("src_label")
        assert set(grouped) == {"cl-a", "cl-b"}
        assert grouped["cl-a"].flows == 2
        assert grouped["cl-a"].delivered == 2
        assert grouped["cl-a"].dropped == 0
        assert grouped["cl-a"].top_drop_reason() == "-"
        assert grouped["cl-b"].flows == 1
        assert grouped["cl-b"].frames == 3
        assert grouped["cl-b"].bytes == 300
        assert grouped["cl-b"].drops == {"link-loss": 1, "corrupt": 2}
        assert grouped["cl-b"].top_drop_reason() == "corrupt:2"

    def test_rollup_by_learned_destination_label(self):
        grouped = self.fill(FlowTable()).rollup("dst_label")
        assert grouped["cl-x"].delivered == 1
        assert grouped["cl-y"].delivered == 1

    def test_rollup_by_callable_rack_mapping(self):
        rack_of = {"10.0.0.1": "rack-0", "10.0.1.1": "rack-1"}
        grouped = self.fill(FlowTable()).rollup(
            lambda key, stats: rack_of[key.src_ip]
        )
        assert grouped["rack-0"].flows == 2
        assert grouped["rack-1"].dropped == 3

    def test_render_rollup_ranks_heaviest_first(self):
        text = self.fill(FlowTable()).render_rollup("src_label",
                                                    title="by client")
        lines = text.splitlines()
        assert "by client" in lines[0] and "2 groups" in lines[0]
        assert lines[3].startswith("cl-b")  # 300 bytes > 200
        assert lines[4].startswith("cl-a")
        assert "corrupt:2" in lines[3]

    def test_render_rollup_empty(self):
        assert FlowTable().render_rollup() == "(no flows recorded)"

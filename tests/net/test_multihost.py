"""Multi-host topologies: wires, cross-host reachability, hostlo's limit.

The paper's hostlo is a single-host device (its queues live in one host
kernel).  With two simulated hosts cabled together these tests show
exactly where each design works: plain L2 and overlays cross the wire,
hostlo cannot.
"""

import pytest

from repro.errors import TopologyError
from repro.net import resolve_path
from repro.net.forwarding import ForwardingEngine
from repro.net.links import PhysicalLink, connect_hosts
from repro.net.transfer import TransferEngine
from repro.sim import CpuResource, Environment
from repro.virt import PhysicalHost, Vmm
from repro.workloads.base import WorkloadResult  # noqa: F401 (API surface)


@pytest.fixture
def two_hosts():
    env = Environment()
    host_a = PhysicalHost(env, name="alpha", seed=1)
    host_b = PhysicalHost(env, name="beta", seed=2)
    vmm_a, vmm_b = Vmm(host_a), Vmm(host_b)
    vm_a = vmm_a.create_vm("vm-a")
    # Host beta's bridge shares the subnet (one L2 segment across the
    # wire) but must allocate from a disjoint range.
    host_b._host_allocators["virbr0"]._next = 100
    vm_b = vmm_b.create_vm("vm-b")
    link = connect_hosts("dc-wire", host_a, host_b)
    return env, host_a, host_b, vm_a, vm_b, link


class TestLink:
    def test_cabling_wires_both_ends(self, two_hosts):
        _env, host_a, host_b, _vm_a, _vm_b, link = two_hosts
        assert link.peer_of(link.nic_a) is link.nic_b
        assert link.nic_a.namespace is host_a.ns
        assert host_a.default_bridge.has_port(link.nic_a)
        assert host_b.default_bridge.has_port(link.nic_b)

    def test_recabling_a_cabled_nic_rejected(self, two_hosts):
        *_rest, link = two_hosts
        from repro.net.devices import PhysicalNic

        with pytest.raises(TopologyError):
            PhysicalLink("bad", link.nic_a, PhysicalNic("fresh"))
        with pytest.raises(TopologyError):
            nic = PhysicalNic("x")
            PhysicalLink("self", nic, nic)

    def test_peer_of_foreign_nic_rejected(self, two_hosts):
        *_rest, link = two_hosts
        from repro.net.devices import PhysicalNic

        with pytest.raises(TopologyError):
            link.peer_of(PhysicalNic("stranger"))


class TestCrossHostPaths:
    def test_vm_to_vm_across_the_wire(self, two_hosts):
        _env, _a, _b, vm_a, vm_b, link = two_hosts
        path = resolve_path(vm_a.ns, vm_b.primary_nic.primary_ip, 22)
        names = path.stage_names()
        assert "nic_xmit" in names and "wire" in names
        assert path.stages[-1].domain == "vm:vm-b"
        # Both host kernels' bridges are traversed.
        domains = set(path.domains())
        assert "host:alpha" in domains and "host:beta" in domains
        assert link.domain in domains

    def test_frames_cross_too(self, two_hosts):
        _env, _a, _b, vm_a, vm_b, link = two_hosts
        delivery = ForwardingEngine().send(
            vm_a.ns, vm_b.primary_nic.primary_ip, 22
        )
        assert delivery.delivered
        assert delivery.namespace == "vm-b"
        assert delivery.visited(f"wire:{link.name}")

    def test_hostlo_cannot_span_hosts(self, two_hosts):
        _env, host_a, _b, vm_a, vm_b, _link = two_hosts
        # The multiplexed loopback's queues are host-kernel queues: the
        # VMM refuses to build one for a VM it does not run.  This is
        # hostlo's fundamental reach limit — cross-host pods need an
        # overlay.
        with pytest.raises(TopologyError, match="cannot span"):
            Vmm(host_a).create_hostlo("hlo", [vm_a, vm_b])

    def test_wire_capacity_caps_throughput(self, two_hosts):
        env, host_a, host_b, vm_a, vm_b, link = two_hosts
        # Slow wire: 100 Mbit/s.
        slow_env = Environment()
        ha = PhysicalHost(slow_env, name="alpha", seed=1)
        hb = PhysicalHost(slow_env, name="beta", seed=2)
        va = Vmm(ha).create_vm("vm-a")
        hb._host_allocators["virbr0"]._next = 100
        vb = Vmm(hb).create_vm("vm-b")
        slow = connect_hosts("slow", ha, hb, bandwidth_bps=100e6)

        engine = TransferEngine(slow_env)
        engine.register_domain(ha.domain, ha.cpu)
        engine.register_domain(hb.domain, hb.cpu)
        engine.register_domain(va.domain, va.cpu)
        engine.register_domain(vb.domain, vb.cpu)
        engine.register_domain(slow.domain, slow.make_pool(slow_env))

        path = resolve_path(va.ns, vb.primary_nic.primary_ip, 5001)
        sent = {"bytes": 0}
        t_end = 0.02

        def worker():
            while slow_env.now < t_end:
                yield from engine.transfer(path, 1448, stream=True)
                sent["bytes"] += 1448

        procs = [slow_env.process(worker()) for _ in range(16)]
        from repro.sim.events import AllOf

        slow_env.run(until=AllOf(slow_env, procs))
        achieved_bps = sent["bytes"] * 8 / slow_env.now
        # The 100 Mbit wire binds (within scheduling slack).
        assert achieved_bps <= 105e6
        assert achieved_bps >= 60e6

"""Bounded device queues: overflow, stall, drain, hostlo eviction."""

import pytest

from repro.errors import TopologyError
from repro.net.devices import (
    DEFAULT_QUEUE_CAPACITY,
    DeviceQueue,
    HostloEndpoint,
    HostloTap,
    VirtioNic,
)


class TestDeviceQueue:
    def test_every_device_gets_rings(self):
        nic = VirtioNic("eth0")
        assert nic.rx_queue.capacity == DEFAULT_QUEUE_CAPACITY
        assert nic.tx_queue.name == "eth0:tx"
        assert nic.rx_queue.depth == 0

    def test_offer_take_roundtrip(self):
        queue = DeviceQueue("q", capacity=2)
        assert queue.offer() and queue.offer()
        assert queue.depth == 2 and queue.accepted == 2
        queue.take()
        assert queue.depth == 1

    def test_overflow_drops_and_counts(self):
        queue = DeviceQueue("q", capacity=1)
        assert queue.offer()
        assert not queue.offer()
        assert queue.drops == 1
        assert queue.depth == 1  # the admitted frame is untouched

    def test_take_from_empty_rejected(self):
        with pytest.raises(TopologyError):
            DeviceQueue("q").take()

    def test_stalled_queue_admits_until_full(self):
        queue = DeviceQueue("q", capacity=2)
        queue.stall()
        assert queue.stalled
        assert queue.offer() and queue.offer()  # ring still has room
        assert not queue.offer()                # ... until it doesn't
        queue.resume()
        assert not queue.stalled

    def test_drain_empties_and_reports(self):
        queue = DeviceQueue("q", capacity=8)
        for _ in range(3):
            queue.offer()
        assert queue.drain() == 3
        assert queue.depth == 0

    def test_bad_capacity_rejected(self):
        with pytest.raises(TopologyError):
            DeviceQueue("q", capacity=0)


class TestHostloQueueManagement:
    def tap_with(self, names):
        tap = HostloTap("hlo0")
        endpoints = [HostloEndpoint(n) for n in names]
        for endpoint in endpoints:
            tap.add_queue(endpoint)
        return tap, endpoints

    def test_remove_queue_unlinks_and_drains(self):
        tap, (a, b) = self.tap_with(["a", "b"])
        a.rx_queue.offer()
        a.rx_queue.offer()
        assert tap.remove_queue(a) == 2
        assert tap.queue_count == 1
        assert a.backend is None
        assert b.backend is tap

    def test_remove_unknown_queue_rejected(self):
        tap, _ = self.tap_with(["a"])
        with pytest.raises(TopologyError):
            tap.remove_queue(HostloEndpoint("stranger"))

    def test_stall_surfaces_and_resumes_on_evict(self):
        tap, (a, b) = self.tap_with(["a", "b"])
        tap.stall_queue(a)
        assert tap.stalled_endpoints() == (a,)
        tap.remove_queue(a)
        assert tap.stalled_endpoints() == ()
        assert not a.rx_queue.stalled  # eviction clears the wedge

    def test_stall_unknown_queue_rejected(self):
        tap, _ = self.tap_with(["a"])
        with pytest.raises(TopologyError):
            tap.stall_queue(HostloEndpoint("stranger"))


class TestLinkDownDrain:
    def test_queued_frames_die_labelled_when_the_cable_is_pulled(self):
        from repro.net.devices import PhysicalNic
        from repro.net.links import PhysicalLink

        nic_a, nic_b = PhysicalNic("a0"), PhysicalNic("b0")
        link = PhysicalLink("wire", nic_a, nic_b)
        for _ in range(3):
            assert nic_a.tx_queue.offer()
        assert nic_b.rx_queue.offer()
        assert link.set_down() == 4
        assert link.drops == {"link.down": 4}
        assert nic_a.tx_queue.depth == 0
        assert nic_b.rx_queue.depth == 0
        # Restoring the carrier does not forget the casualties.
        link.set_up()
        assert link.up
        assert link.drops == {"link.down": 4}

    def test_empty_queues_drain_nothing(self):
        from repro.net.devices import PhysicalNic
        from repro.net.links import PhysicalLink

        link = PhysicalLink("wire", PhysicalNic("a0"), PhysicalNic("b0"))
        assert link.set_down() == 0
        assert link.drops == {}

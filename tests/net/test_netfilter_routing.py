"""Unit tests for netfilter NAT and routing tables."""

import pytest

from repro.errors import TopologyError
from repro.net.addresses import cidr, ip
from repro.net.netfilter import DnatRule, FlowKey, MasqueradeRule, Netfilter
from repro.net.routing import Route, RoutingTable


class TestDnat:
    def test_rule_matching(self):
        rule = DnatRule("tcp", 8080, ip("172.17.0.2"), 80)
        assert rule.matches("tcp", ip("192.168.122.11"), 8080)
        assert not rule.matches("udp", ip("192.168.122.11"), 8080)
        assert not rule.matches("tcp", ip("192.168.122.11"), 80)

    def test_rule_with_match_ip(self):
        rule = DnatRule("tcp", 8080, ip("172.17.0.2"), 80,
                        match_ip=ip("192.168.122.11"))
        assert rule.matches("tcp", ip("192.168.122.11"), 8080)
        assert not rule.matches("tcp", ip("192.168.122.12"), 8080)

    def test_bad_proto_and_ports_rejected(self):
        with pytest.raises(TopologyError):
            DnatRule("icmp", 80, ip("1.2.3.4"), 80)
        with pytest.raises(TopologyError):
            DnatRule("tcp", 0, ip("1.2.3.4"), 80)
        with pytest.raises(TopologyError):
            DnatRule("tcp", 80, ip("1.2.3.4"), 70000)

    def test_apply_dnat(self):
        nf = Netfilter()
        nf.add_dnat(DnatRule("tcp", 8080, ip("172.17.0.2"), 80))
        new_ip, new_port, hit = nf.apply_dnat("tcp", ip("10.0.0.1"), 8080)
        assert hit and new_ip == ip("172.17.0.2") and new_port == 80
        same_ip, same_port, miss = nf.apply_dnat("tcp", ip("10.0.0.1"), 9090)
        assert not miss and same_ip == ip("10.0.0.1") and same_port == 9090

    def test_duplicate_dnat_rejected(self):
        nf = Netfilter()
        nf.add_dnat(DnatRule("tcp", 8080, ip("172.17.0.2"), 80))
        with pytest.raises(TopologyError):
            nf.add_dnat(DnatRule("tcp", 8080, ip("172.17.0.3"), 81))

    def test_remove_dnat(self):
        nf = Netfilter()
        nf.add_dnat(DnatRule("tcp", 8080, ip("172.17.0.2"), 80))
        nf.remove_dnat("tcp", 8080)
        assert not nf.active
        with pytest.raises(TopologyError):
            nf.remove_dnat("tcp", 8080)

    def test_rule_count_and_active(self):
        nf = Netfilter()
        assert not nf.active and nf.rule_count == 0
        nf.add_masquerade(MasqueradeRule(cidr("172.17.0.0/16"), "eth0"))
        assert nf.active and nf.rule_count == 1


class TestMasquerade:
    def test_masquerades(self):
        nf = Netfilter()
        nf.add_masquerade(MasqueradeRule(cidr("172.17.0.0/16"), "eth0"))
        assert nf.masquerades(ip("172.17.0.5"), "eth0")
        assert not nf.masquerades(ip("10.0.0.5"), "eth0")
        assert not nf.masquerades(ip("172.17.0.5"), "eth1")


class TestForwardDrop:
    def test_drop_rule_matches_direction(self):
        nf = Netfilter()
        nf.add_forward_drop(cidr("10.10.0.0/24"), cidr("10.20.0.0/24"))
        assert nf.forward_dropped(ip("10.10.0.5"), ip("10.20.0.7"))
        assert not nf.forward_dropped(ip("10.20.0.7"), ip("10.10.0.5"))
        assert not nf.forward_dropped(ip("10.10.0.5"), ip("10.30.0.7"))

    def test_rule_count_includes_drops(self):
        nf = Netfilter()
        nf.add_forward_drop(cidr("10.0.0.0/8"), cidr("172.16.0.0/12"))
        assert nf.rule_count == 1
        # FORWARD drops alone do not engage the NAT hooks.
        assert not nf.active


class TestConntrack:
    def test_track_and_lookup(self):
        nf = Netfilter()
        key = FlowKey("tcp", ip("10.0.0.1"), 4000, ip("192.168.122.11"), 8080)
        translated = FlowKey("tcp", ip("10.0.0.1"), 4000, ip("172.17.0.2"), 80)
        nf.track(key, translated)
        assert nf.tracked(key) == translated
        assert nf.conntrack_size == 1
        nf.flush_conntrack()
        assert nf.tracked(key) is None


class TestRouting:
    def test_longest_prefix_wins(self):
        table = RoutingTable()
        table.add(Route(cidr("10.0.0.0/8"), "eth0"))
        table.add(Route(cidr("10.1.0.0/16"), "eth1"))
        assert table.lookup(ip("10.1.2.3")).device == "eth1"
        assert table.lookup(ip("10.2.2.3")).device == "eth0"

    def test_default_route(self):
        table = RoutingTable()
        table.add_default("eth0", ip("192.168.122.1"))
        route = table.lookup(ip("8.8.8.8"))
        assert route.device == "eth0"
        assert route.gateway == ip("192.168.122.1")

    def test_metric_breaks_ties(self):
        table = RoutingTable()
        table.add(Route(cidr("0.0.0.0/0"), "slow", metric=100))
        table.add(Route(cidr("0.0.0.0/0"), "fast", metric=10))
        assert table.lookup(ip("1.1.1.1")).device == "fast"

    def test_no_route_returns_none(self):
        assert RoutingTable().lookup(ip("1.1.1.1")) is None

    def test_negative_metric_rejected(self):
        with pytest.raises(TopologyError):
            Route(cidr("0.0.0.0/0"), "eth0", metric=-1)

    def test_remove_for_device(self):
        table = RoutingTable()
        table.add(Route(cidr("10.0.0.0/8"), "eth0"))
        table.add(Route(cidr("11.0.0.0/8"), "eth1"))
        assert table.remove_for_device("eth0") == 1
        assert table.lookup(ip("10.0.0.1")) is None
        assert table.lookup(ip("11.0.0.1")) is not None

    def test_len_and_iter(self):
        table = RoutingTable()
        table.add_on_link(cidr("10.0.0.0/24"), "eth0")
        assert len(table) == 1
        assert [r.device for r in table] == ["eth0"]

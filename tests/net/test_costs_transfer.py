"""Tests for the cost model and the transfer engine."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.net import CostModel, StageCost, resolve_path
from repro.net.addresses import ip
from repro.net.costs import JITTER, JitterModel
from repro.net.transfer import TransferEngine
from repro.sim import CpuResource, Environment, RngRegistry


class TestStageCost:
    def test_cycles_linear_in_packets_and_bytes(self):
        sc = StageCost("x", "sys", 1000, 2.0)
        assert sc.cycles(1, 0) == 1000
        assert sc.cycles(3, 100) == 3200

    def test_batching_amortizes_per_packet_only(self):
        sc = StageCost("x", "soft", 1000, 2.0, batch_factor=4.0)
        assert sc.cycles(4, 100, batched=True) == 1000 + 200
        assert sc.cycles(4, 100, batched=False) == 4000 + 200

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StageCost("x", "weird", 10)
        with pytest.raises(ConfigurationError):
            StageCost("x", "sys", -1)
        with pytest.raises(ConfigurationError):
            StageCost("x", "sys", 1, batch_factor=0.5)

    @given(st.integers(min_value=1, max_value=100),
           st.integers(min_value=0, max_value=10**6))
    def test_batched_never_costs_more(self, packets, nbytes):
        sc = StageCost("x", "soft", 1500, 0.3, batch_factor=3.0)
        assert sc.cycles(packets, nbytes, batched=True) <= sc.cycles(
            packets, nbytes, batched=False
        )


class TestCostModel:
    def test_default_has_all_resolver_stages(self):
        model = CostModel.default()
        needed = [
            "app_send", "app_recv", "syscall_send", "syscall_recv",
            "stack_tx", "stack_rx", "bridge_fwd", "netfilter_nat",
            "veth_xmit", "loopback_xmit", "virtio_tx", "virtio_rx",
            "vhost_tx", "vhost_rx", "tap_xmit", "hostlo_reflect",
            "vxlan_encap", "vxlan_decap",
        ]
        for name in needed:
            assert name in model, name

    def test_unknown_stage_raises(self):
        with pytest.raises(ConfigurationError):
            CostModel.default()["warp_drive"]

    def test_replace_makes_new_model(self):
        model = CostModel.default()
        new = model.replace(bridge_fwd=StageCost("bridge_fwd", "soft", 1.0))
        assert new["bridge_fwd"].cycles_per_packet == 1.0
        assert model["bridge_fwd"].cycles_per_packet != 1.0

    def test_replace_unknown_stage_rejected(self):
        with pytest.raises(ConfigurationError):
            CostModel.default().replace(nope=StageCost("nope", "sys", 1.0))

    def test_scale(self):
        model = CostModel.default()
        doubled = model.scale("netfilter_nat", 2.0)
        assert doubled["netfilter_nat"].cycles_per_packet == pytest.approx(
            2 * model["netfilter_nat"].cycles_per_packet
        )

    def test_per_message_stages(self):
        model = CostModel.default()
        assert model["app_send"].per_message
        assert not model["bridge_fwd"].per_message

    def test_hostlo_reflect_not_batchable(self):
        assert CostModel.default()["hostlo_reflect"].batch_factor == 1.0


class TestJitter:
    def test_known_classes(self):
        for name in ("clean", "hostlo", "virt", "nat", "overlay"):
            assert name in JITTER

    def test_sample_mean_near_one(self):
        rng = RngRegistry(1).stream("jitter")
        samples = [JITTER["nat"].sample(rng) for _ in range(4000)]
        mean = sum(samples) / len(samples)
        assert 0.9 < mean < 1.1

    def test_zero_sigma_is_deterministic(self):
        rng = RngRegistry(1).stream("jitter")
        assert JitterModel(0.0).sample(rng) == 1.0

    def test_overlay_noisier_than_clean(self):
        rng_a = RngRegistry(1).stream("a")
        rng_b = RngRegistry(1).stream("b")
        import numpy as np

        noisy = np.std([JITTER["overlay"].sample(rng_a) for _ in range(3000)])
        calm = np.std([JITTER["clean"].sample(rng_b) for _ in range(3000)])
        assert noisy > calm


def _engine_with_topo(nocont_topo):
    env = Environment()
    eng = TransferEngine(env)
    eng.register_domain("host", CpuResource(env, cores=12, name="host"))
    eng.register_domain("client", CpuResource(env, cores=2, name="client"))
    eng.register_domain("vm:vm1", CpuResource(env, cores=5, name="vm1"))
    path = resolve_path(nocont_topo.client, ip("192.168.122.11"), 8080)
    return env, eng, path


class TestTransferEngine:
    def test_duplicate_domain_rejected(self):
        env = Environment()
        eng = TransferEngine(env)
        eng.register_domain("host", CpuResource(env))
        with pytest.raises(ConfigurationError):
            eng.register_domain("host", CpuResource(env))

    def test_unknown_domain_raises(self):
        eng = TransferEngine(Environment())
        with pytest.raises(ConfigurationError):
            eng.cpu("nowhere")

    def test_transfer_takes_time_and_bills_cpus(self, nocont_topo):
        env, eng, path = _engine_with_topo(nocont_topo)
        env.process(eng.transfer(path, 1280))
        env.run()
        assert env.now > 0
        assert eng.cpu("vm:vm1").busy_seconds() > 0
        assert eng.cpu("host").busy_seconds() > 0
        assert eng.cpu("client").busy_seconds() > 0

    def test_latency_estimate_matches_uncontended_run(self, nocont_topo):
        env, eng, path = _engine_with_topo(nocont_topo)
        est = eng.latency_estimate(path, 1280)
        env.process(eng.transfer(path, 1280))
        env.run()
        assert env.now == pytest.approx(est, rel=1e-9)

    def test_bigger_message_takes_longer(self, nocont_topo):
        env, eng, path = _engine_with_topo(nocont_topo)
        small = eng.latency_estimate(path, 64)
        big = eng.latency_estimate(path, 16384)
        assert big > small

    def test_round_trip_runs_both_paths(self, nocont_topo):
        env, eng, path = _engine_with_topo(nocont_topo)
        reverse = resolve_path(nocont_topo.guest, ip("192.168.122.100"), 4000)
        env.process(eng.round_trip(path, reverse, 1280, 1280))
        env.run()
        one_way = eng.latency_estimate(path, 1280)
        assert env.now > one_way

    def test_bottleneck_rate_positive_finite(self, nocont_topo):
        env, eng, path = _engine_with_topo(nocont_topo)
        rate = eng.bottleneck_rate(path, 1280)
        assert 0 < rate < float("inf")

    def test_trace_timeline_is_ordered_and_complete(self, nocont_topo):
        env, eng, path = _engine_with_topo(nocont_topo)
        timeline = eng.trace(path, 1280)
        assert len(timeline) == len(path.stages)
        assert [t.stage for t in timeline] == list(path.stage_names())
        for earlier, later in zip(timeline, timeline[1:]):
            assert later.started_at >= earlier.finished_at - 1e-12
        total = timeline[-1].finished_at - timeline[0].started_at
        assert total == pytest.approx(eng.latency_estimate(path, 1280))

    def test_trace_separates_service_and_deferral(self, nocont_topo):
        env, eng, path = _engine_with_topo(nocont_topo)
        timeline = eng.trace(path, 1280)
        virtio_rx = next(t for t in timeline if t.stage == "virtio_rx")
        assert virtio_rx.deferral_s > virtio_rx.service_s  # IRQ injection
        app = next(t for t in timeline if t.stage == "app_send")
        assert app.deferral_s == 0.0

    def test_stream_mode_not_slower(self, nocont_topo):
        env, eng, path = _engine_with_topo(nocont_topo)

        def run(stream):
            env_local = Environment()
            local = TransferEngine(env_local)
            local.register_domain("host", CpuResource(env_local, cores=12))
            local.register_domain("client", CpuResource(env_local, cores=2))
            local.register_domain("vm:vm1", CpuResource(env_local, cores=5))
            env_local.process(local.transfer(path, 14480, stream=stream))
            env_local.run()
            return env_local.now

        assert run(True) <= run(False)

"""Datapath-resolution tests over the six deployment topologies.

These tests pin down the paper's structural claims: the NAT path is
strictly longer than the NoCont path, the BrFusion path has exactly the
NoCont shape, hostlo avoids bridges/NAT entirely, and the overlay path
is the longest of all.
"""

import pytest

from repro.errors import TopologyError
from repro.net import resolve_path
from repro.net.addresses import ip
from repro.net.namespace import NetworkNamespace


def fwd(topo, dst, port=8080, proto="tcp", src=None):
    return resolve_path(src or topo.client, ip(dst), port, proto)


class TestNoContPath:
    def test_delivers_to_guest(self, nocont_topo):
        path = fwd(nocont_topo, "192.168.122.11")
        assert path.stages[-1].domain == "vm:vm1"

    def test_stage_sequence(self, nocont_topo):
        path = fwd(nocont_topo, "192.168.122.11")
        assert path.stage_names() == (
            "app_send", "syscall_send", "stack_tx",
            "veth_xmit",            # client leg onto the host bridge
            "bridge_fwd",           # host bridge
            "tap_xmit", "vhost_rx", "virtio_rx",
            "stack_rx", "syscall_recv", "app_recv",
        )

    def test_no_guest_nat_stage(self, nocont_topo):
        path = fwd(nocont_topo, "192.168.122.11")
        assert path.count("netfilter_nat") == 0

    def test_domains(self, nocont_topo):
        path = fwd(nocont_topo, "192.168.122.11")
        domains = set(path.domains())
        assert {"client", "host", "vm:vm1"} <= domains
        # The vhost worker of the VM's NIC is its own kernel thread,
        # qualified by the host kernel that runs it.
        assert any(d.startswith("kthread:host:vhost:") for d in domains)

    def test_jitter_class_virt(self, nocont_topo):
        assert fwd(nocont_topo, "192.168.122.11").jitter_class == "virt"

    def test_segment_payload_is_mtu_derived(self, nocont_topo):
        path = fwd(nocont_topo, "192.168.122.11")
        assert path.segment_payload == 1500 - 52

    def test_reverse_path_resolves(self, nocont_topo):
        back = resolve_path(nocont_topo.guest, ip("192.168.122.100"), 4000)
        assert back.stages[-1].domain == "client"


class TestNatPath:
    def test_dnat_translates_to_container(self, nat_topo):
        path = fwd(nat_topo, "192.168.122.11", port=8080)
        # Delivered in the container namespace (same vm domain).
        assert path.stages[-1].domain == "vm:vm1"
        assert path.count("netfilter_nat") == 1

    def test_nat_path_is_longer_than_nocont(self, nat_topo, nocont_topo):
        nat = fwd(nat_topo, "192.168.122.11")
        nocont = fwd(nocont_topo, "192.168.122.11")
        assert len(nat.stages) > len(nocont.stages)

    def test_nat_extra_stages_are_the_duplicated_layer(self, nat_topo):
        path = fwd(nat_topo, "192.168.122.11")
        names = path.stage_names()
        # The guest-level duplicated virtualization: DNAT + docker0 + veth.
        assert "netfilter_nat" in names
        assert names.count("bridge_fwd") == 2  # host bridge + docker0
        assert names.count("veth_xmit") == 2  # client leg + container leg

    def test_jitter_class_nat(self, nat_topo):
        assert fwd(nat_topo, "192.168.122.11").jitter_class == "nat"

    def test_unpublished_port_lands_in_guest_not_container(self, nat_topo):
        # No DNAT rule for this port: the packet reaches the VM itself
        # (where nothing listens), not the container behind docker0.
        path = fwd(nat_topo, "192.168.122.11", port=9999)
        assert path.count("netfilter_nat") == 0
        assert path.stage_names().count("veth_xmit") == 1  # client leg only

    def test_container_egress_masquerades(self, nat_topo):
        path = resolve_path(nat_topo.cont, ip("192.168.122.100"), 4000)
        assert path.count("netfilter_nat") == 1  # POSTROUTING masquerade
        assert path.stages[-1].domain == "client"

    def test_udp_also_forwarded(self, nat_topo):
        path = fwd(nat_topo, "192.168.122.11", proto="udp")
        assert path.count("netfilter_nat") == 1


class TestBrFusionPath:
    def test_same_shape_as_nocont(self, brfusion_topo, nocont_topo):
        brf = fwd(brfusion_topo, "192.168.122.50")
        nocont = fwd(nocont_topo, "192.168.122.11")
        assert brf.stage_names() == nocont.stage_names()

    def test_no_guest_bridge_or_nat(self, brfusion_topo):
        path = fwd(brfusion_topo, "192.168.122.50")
        assert path.count("netfilter_nat") == 0
        assert path.count("bridge_fwd") == 1  # only the host bridge

    def test_delivered_in_pod_namespace_of_vm_domain(self, brfusion_topo):
        path = fwd(brfusion_topo, "192.168.122.50")
        assert path.stages[-1].domain == "vm:vm1"

    def test_pod_egress_same_shape_as_guest_egress(self, brfusion_topo,
                                                   nocont_topo):
        brf = resolve_path(brfusion_topo.pod, ip("192.168.122.100"), 4000)
        nocont = resolve_path(nocont_topo.guest, ip("192.168.122.100"), 4000)
        assert brf.stage_names() == nocont.stage_names()


class TestSameNodePath:
    def test_localhost_delivery(self, samenode_topo):
        path = resolve_path(samenode_topo.pod, ip("127.0.0.1"), 6379)
        names = path.stage_names()
        assert "loopback_xmit" in names
        assert "bridge_fwd" not in names
        assert "vhost_rx" not in names

    def test_single_domain(self, samenode_topo):
        path = resolve_path(samenode_topo.pod, ip("127.0.0.1"), 6379)
        # Everything executes inside the VM: its vCPUs plus its RX
        # softirq context; no host/client CPU is touched.
        assert set(path.domains()) == {"vm:vm1", "softirq:vm:vm1"}

    def test_large_segment_payload(self, samenode_topo):
        path = resolve_path(samenode_topo.pod, ip("127.0.0.1"), 6379)
        assert path.segment_payload == 65536 - 52

    def test_jitter_class_clean(self, samenode_topo):
        path = resolve_path(samenode_topo.pod, ip("127.0.0.1"), 6379)
        assert path.jitter_class == "clean"


class TestHostloPath:
    def test_cross_vm_delivery(self, hostlo_topo):
        path = resolve_path(hostlo_topo.frag_a, ip("10.88.0.3"), 6379)
        assert path.stages[-1].domain == "vm:vm2"

    def test_no_bridge_no_nat_no_overlay(self, hostlo_topo):
        path = resolve_path(hostlo_topo.frag_a, ip("10.88.0.3"), 6379)
        names = path.stage_names()
        assert "bridge_fwd" not in names
        assert "netfilter_nat" not in names
        assert "vxlan_encap" not in names

    def test_reflect_multiplier_counts_queues(self, hostlo_topo):
        path = resolve_path(hostlo_topo.frag_a, ip("10.88.0.3"), 6379)
        reflect = [s for s in path.stages if s.stage == "hostlo_reflect"]
        assert len(reflect) == 1
        assert reflect[0].multiplier == 2.0

    def test_mtu_limited_payload(self, hostlo_topo):
        path = resolve_path(hostlo_topo.frag_a, ip("10.88.0.3"), 6379)
        assert path.segment_payload == 1500 - 52

    def test_jitter_class_hostlo(self, hostlo_topo):
        path = resolve_path(hostlo_topo.frag_a, ip("10.88.0.3"), 6379)
        assert path.jitter_class == "hostlo"

    def test_symmetric(self, hostlo_topo):
        there = resolve_path(hostlo_topo.frag_a, ip("10.88.0.3"), 6379)
        back = resolve_path(hostlo_topo.frag_b, ip("10.88.0.2"), 6379)
        assert there.stage_names() == back.stage_names()

    def test_unknown_ip_rejected(self, hostlo_topo):
        with pytest.raises(TopologyError):
            resolve_path(hostlo_topo.frag_a, ip("10.88.0.99"), 6379)


class TestOverlayPath:
    def test_cross_vm_delivery(self, overlay_topo):
        path = resolve_path(overlay_topo.cont_a, ip("10.0.9.3"), 6379)
        assert path.stages[-1].domain == "vm:vm2"

    def test_encap_decap_present(self, overlay_topo):
        path = resolve_path(overlay_topo.cont_a, ip("10.0.9.3"), 6379)
        assert path.count("vxlan_encap") == 1
        assert path.count("vxlan_decap") == 1

    def test_underlay_traverses_host_bridge(self, overlay_topo):
        path = resolve_path(overlay_topo.cont_a, ip("10.0.9.3"), 6379)
        names = path.stage_names()
        assert names.count("bridge_fwd") >= 3  # two overlay bridges + host
        assert "vhost_tx" in names and "vhost_rx" in names

    def test_overlay_longer_than_hostlo(self, overlay_topo, hostlo_topo):
        overlay = resolve_path(overlay_topo.cont_a, ip("10.0.9.3"), 6379)
        hostlo = resolve_path(hostlo_topo.frag_a, ip("10.88.0.3"), 6379)
        assert len(overlay.stages) > len(hostlo.stages)

    def test_vxlan_overhead_shrinks_payload(self, overlay_topo):
        path = resolve_path(overlay_topo.cont_a, ip("10.0.9.3"), 6379)
        assert path.segment_payload == 1500 - 52 - 50

    def test_jitter_class_overlay(self, overlay_topo):
        path = resolve_path(overlay_topo.cont_a, ip("10.0.9.3"), 6379)
        assert path.jitter_class == "overlay"

    def test_local_overlay_neighbor_stays_on_node(self, overlay_topo):
        # cont on same bridge as the overlay gateway address: L2-local.
        path = resolve_path(overlay_topo.cont_a, ip("10.0.9.1"), 80)
        assert path.count("vxlan_encap") == 0


class TestPathHelpers:
    def test_segments_for(self, nocont_topo):
        path = fwd(nocont_topo, "192.168.122.11")
        assert path.segments_for(0) == 1
        assert path.segments_for(1) == 1
        assert path.segments_for(1448) == 1
        assert path.segments_for(1449) == 2
        assert path.segments_for(14480) == 10

    def test_no_route_raises(self):
        lonely = NetworkNamespace("lonely", kind="host")
        with pytest.raises(TopologyError):
            resolve_path(lonely, ip("8.8.8.8"), 53)

    def test_include_endpoints_false_strips_app_stages(self, nocont_topo):
        path = resolve_path(
            nocont_topo.client, ip("192.168.122.11"), 8080,
            include_endpoints=False,
        )
        assert "app_send" not in path.stage_names()
        assert "syscall_send" not in path.stage_names()


class TestNetfilterRuleScaling:
    def test_multiplier_grows_with_rules(self, nat_topo):
        from repro.net.netfilter import DnatRule
        from repro.net.addresses import ip as _ip

        base = resolve_path(nat_topo.client, ip("192.168.122.11"), 8080)
        base_mult = next(
            s.multiplier for s in base.stages if s.stage == "netfilter_nat"
        )
        for port in range(14000, 14010):
            nat_topo.guest.netfilter.add_dnat(
                DnatRule("tcp", port, _ip("172.17.0.2"), port)
            )
        loaded = resolve_path(nat_topo.client, ip("192.168.122.11"), 8080)
        loaded_mult = next(
            s.multiplier for s in loaded.stages if s.stage == "netfilter_nat"
        )
        assert loaded_mult > base_mult

    def test_brfusion_path_untouched_by_rules(self, brfusion_topo):
        path = resolve_path(brfusion_topo.client, ip("192.168.122.50"), 80)
        assert path.count("netfilter_nat") == 0

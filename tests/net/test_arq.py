"""Sliding-window ARQ over lossy datapaths: convergence, determinism,
partition recovery, backpressure and exactly-once delivery."""

import pytest

from repro import faults
from repro.errors import ConfigurationError
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.harness.reliability import WireRig
from repro.net import ArqConfig
from repro.net.devices import DeviceQueue


def lossy(probability, kind="link.loss", **kwargs):
    return FaultPlan(specs=(
        FaultSpec(kind=kind, target="*", probability=probability, **kwargs),
    ))


def run_arq(rig, plan, *, messages=40, nbytes=1448, config=None,
            tx_queue=None, ack=True, before_run=None):
    transfer = rig.engine.reliable_transfer(
        rig.path, nbytes, messages=messages,
        config=config or ArqConfig(),
        rng=rig.host_a.rng.stream("arq"),
        ack_path=rig.ack_path if ack else None,
        links=(rig.link,), tx_queue=tx_queue,
    )
    with faults.use(rig.injector(plan)):
        process = transfer.start()
        if before_run is not None:
            before_run(rig)
        rig.env.run(until=process)
    return transfer.report


class TestArqConfig:
    @pytest.mark.parametrize("kwargs", [
        {"window": 0}, {"timeout_s": 0.0}, {"backoff": 0.5},
        {"max_retries": -1}, {"jitter": 1.0},
    ])
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ArqConfig(**kwargs)

    def test_rto_backs_off_exponentially(self):
        config = ArqConfig(timeout_s=1e-4, backoff=2.0, jitter=0.0)
        assert config.rto_s(1) == 1e-4
        assert config.rto_s(3) == 4e-4


class TestConvergence:
    def test_faultless_baseline_is_all_first_try(self):
        report = run_arq(WireRig(seed=7), FaultPlan())
        assert report.complete and report.exactly_once
        assert report.transmissions == report.messages
        assert report.retransmissions == 0
        assert report.goodput_mbps > 0
        assert report.conserved()

    def test_converges_under_five_percent_loss(self):
        report = run_arq(WireRig(seed=7), lossy(0.05), messages=80)
        assert report.complete and report.exactly_once
        assert report.retransmissions > 0
        assert report.losses.get("link-loss", 0) > 0
        assert report.goodput_mbps > 0
        assert report.conserved()

    def test_corrupted_frames_are_retransmitted_too(self):
        report = run_arq(WireRig(seed=7), lossy(0.2, kind="link.corrupt"))
        assert report.complete
        assert report.losses.get("corrupt", 0) > 0
        assert report.conserved()

    def test_retry_budget_exhausts_under_total_loss(self):
        report = run_arq(
            WireRig(seed=7), lossy(1.0), messages=3,
            config=ArqConfig(max_retries=2),
        )
        assert report.delivered == 0
        assert report.exhausted == 3
        assert report.transmissions == 9  # 1 + 2 retries, per message
        assert report.conserved()

    def test_lost_acks_cause_duplicates_never_double_delivery(self):
        report = run_arq(WireRig(seed=7), lossy(0.3), messages=60)
        assert report.complete
        assert report.acks_lost > 0
        assert report.duplicates > 0
        assert report.exactly_once  # suppressed at the receiver
        assert report.conserved()


class TestDeterminism:
    def test_same_seed_same_plan_bit_identical_schedule(self):
        first = run_arq(WireRig(seed=11), lossy(0.1), messages=60)
        second = run_arq(WireRig(seed=11), lossy(0.1), messages=60)
        assert first.retransmissions > 0
        assert first.schedule == second.schedule

    def test_different_seed_different_schedule(self):
        first = run_arq(WireRig(seed=11), lossy(0.1), messages=60)
        second = run_arq(WireRig(seed=12), lossy(0.1), messages=60)
        assert first.schedule != second.schedule


class TestPartitionMidTransfer:
    """Satellite: ``set_down()`` mid-transfer drops in-flight frames
    (accounted as ``link.down``); ARQ recovers after
    ``set_up()``."""

    def flap(self, down_at, up_at):
        def start_flapping(rig):
            def flapper():
                yield rig.env.timeout(down_at)
                rig.link.set_down()
                yield rig.env.timeout(up_at - down_at)
                rig.link.set_up()

            rig.env.process(flapper())

        return start_flapping

    def test_arq_rides_out_a_partition(self):
        # Measure the healthy run, then partition the middle half.
        healthy = run_arq(WireRig(seed=3), FaultPlan(),
                          messages=20, nbytes=65536)
        elapsed = healthy.elapsed_s
        assert elapsed > 0

        report = run_arq(
            WireRig(seed=3), FaultPlan(), messages=20, nbytes=65536,
            before_run=self.flap(0.25 * elapsed, 0.75 * elapsed),
        )
        assert report.losses.get("link.down", 0) > 0
        assert report.retransmissions > 0
        assert report.complete and report.exactly_once
        assert report.conserved()
        assert report.elapsed_s > elapsed  # the outage cost time

    def test_raw_mode_loses_partitioned_frames_for_good(self):
        healthy = run_arq(WireRig(seed=3), FaultPlan(),
                          messages=20, nbytes=65536)
        report = run_arq(
            WireRig(seed=3), FaultPlan(), messages=20, nbytes=65536,
            config=ArqConfig(max_retries=0), ack=False,
            before_run=self.flap(0.25 * healthy.elapsed_s,
                                 0.75 * healthy.elapsed_s),
        )
        assert report.exhausted == report.losses.get("link.down", 0)
        assert report.exhausted > 0
        assert report.delivered < report.messages
        assert report.conserved()


class TestQueueing:
    def test_small_window_backpressures(self):
        report = run_arq(
            WireRig(seed=5), FaultPlan(), messages=10,
            config=ArqConfig(window=2),
        )
        assert report.complete
        assert report.backpressure_waits > 0

    def test_full_tx_ring_drops_before_spending_cycles(self):
        queue = DeviceQueue("tx", capacity=2)
        report = run_arq(
            WireRig(seed=5), FaultPlan(), messages=16,
            config=ArqConfig(max_retries=12), tx_queue=queue,
        )
        assert report.losses.get("txq-overflow", 0) > 0
        assert queue.drops == report.losses["txq-overflow"]
        assert report.exactly_once
        assert report.conserved()
        assert report.delivered + report.exhausted == report.messages
        assert queue.depth == 0  # every admitted frame was serviced

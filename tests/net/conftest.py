"""Hand-built topologies mirroring the paper's six deployment modes.

The production code builds these same shapes through the VMM /
orchestrator layers; here they are wired by hand so the datapath
resolver is tested in isolation.
"""

import pytest

from repro.net import (
    Bridge,
    HostloEndpoint,
    HostloTap,
    NetworkNamespace,
    TapDevice,
    VethPair,
    VirtioNic,
    VxlanTunnel,
)
from repro.net.addresses import MacAllocator, cidr, ip
from repro.net.netfilter import DnatRule, MasqueradeRule

_macs = MacAllocator(oui=0x02AA00)


def mac():
    return _macs.allocate()


class Topo:
    """Bag of namespaces/devices for one hand-built topology."""

    def __init__(self, **parts):
        self.__dict__.update(parts)


def build_host_with_client():
    """Host namespace with virbr0 plus a client namespace on the bridge."""
    host = NetworkNamespace("host", kind="host")
    bridge = Bridge("virbr0")
    bridge.assign_ip(ip("192.168.122.1"), cidr("192.168.122.0/24"))
    host.attach(bridge)
    host.routes.add_on_link(cidr("192.168.122.0/24"), "virbr0")

    client = NetworkNamespace("client", kind="container", domain="client")
    pair = VethPair("eth0", "veth-client", mac(), mac())
    pair.a.assign_ip(ip("192.168.122.100"), cidr("192.168.122.0/24"))
    client.attach(pair.a)
    host.attach(pair.b)
    bridge.add_port(pair.b)
    client.routes.add_on_link(cidr("192.168.122.0/24"), "eth0")
    client.routes.add_default("eth0", ip("192.168.122.1"))
    return Topo(host=host, bridge=bridge, client=client)


def add_vm(base, name, addr):
    """Attach a VM (guest namespace + virtio NIC on the host bridge)."""
    guest = NetworkNamespace(name, kind="guest", domain=f"vm:{name}")
    nic = VirtioNic("eth0", mac())
    nic.assign_ip(ip(addr), cidr("192.168.122.0/24"))
    guest.attach(nic)
    tap = TapDevice(f"tap-{name}")
    base.host.attach(tap)
    base.bridge.add_port(tap)
    nic.attach_backend(tap)
    guest.routes.add_on_link(cidr("192.168.122.0/24"), "eth0")
    guest.routes.add_default("eth0", ip("192.168.122.1"))
    return guest


def add_docker_nat(guest, container_name, container_addr, publish=(8080, 80)):
    """Docker's default bridge+NAT network inside *guest*."""
    docker0 = Bridge("docker0")
    docker0.assign_ip(ip("172.17.0.1"), cidr("172.17.0.0/16"))
    guest.attach(docker0)
    guest.routes.add_on_link(cidr("172.17.0.0/16"), "docker0")

    cont = NetworkNamespace(
        container_name, kind="container", domain=guest.domain
    )
    pair = VethPair("eth0", f"veth-{container_name}", mac(), mac())
    pair.a.assign_ip(ip(container_addr), cidr("172.17.0.0/16"))
    cont.attach(pair.a)
    guest.attach(pair.b)
    docker0.add_port(pair.b)
    cont.routes.add_on_link(cidr("172.17.0.0/16"), "eth0")
    cont.routes.add_default("eth0", ip("172.17.0.1"))

    host_port, cont_port = publish
    guest.netfilter.add_dnat(
        DnatRule("tcp", host_port, ip(container_addr), cont_port)
    )
    guest.netfilter.add_dnat(
        DnatRule("udp", host_port, ip(container_addr), cont_port)
    )
    guest.netfilter.add_masquerade(
        MasqueradeRule(cidr("172.17.0.0/16"), "eth0")
    )
    return cont


def add_brfusion_pod(base, guest, name, addr):
    """BrFusion: hot-plugged vNIC on the *host* bridge, moved into the pod."""
    cont = NetworkNamespace(name, kind="container", domain=guest.domain)
    nic = VirtioNic(f"brf-{name}", mac())
    nic.assign_ip(ip(addr), cidr("192.168.122.0/24"))
    cont.attach(nic)
    tap = TapDevice(f"tap-{name}")
    base.host.attach(tap)
    base.bridge.add_port(tap)
    nic.attach_backend(tap)
    cont.routes.add_on_link(cidr("192.168.122.0/24"), f"brf-{name}")
    cont.routes.add_default(f"brf-{name}", ip("192.168.122.1"))
    return cont


@pytest.fixture
def nocont_topo():
    """Single-level virtualization: server runs natively in the VM."""
    base = build_host_with_client()
    guest = add_vm(base, "vm1", "192.168.122.11")
    return Topo(**base.__dict__, guest=guest)


@pytest.fixture
def nat_topo():
    """Nested default: Docker bridge+NAT inside the VM."""
    base = build_host_with_client()
    guest = add_vm(base, "vm1", "192.168.122.11")
    cont = add_docker_nat(guest, "cont1", "172.17.0.2")
    return Topo(**base.__dict__, guest=guest, cont=cont)


@pytest.fixture
def brfusion_topo():
    """BrFusion: per-pod hot-plugged NIC switched by the host bridge."""
    base = build_host_with_client()
    guest = add_vm(base, "vm1", "192.168.122.11")
    pod = add_brfusion_pod(base, guest, "pod1", "192.168.122.50")
    return Topo(**base.__dict__, guest=guest, pod=pod)


@pytest.fixture
def samenode_topo():
    """Both pod containers share one namespace in one VM (localhost)."""
    base = build_host_with_client()
    guest = add_vm(base, "vm1", "192.168.122.11")
    pod = NetworkNamespace("pod1", kind="container", domain=guest.domain)
    return Topo(**base.__dict__, guest=guest, pod=pod)


@pytest.fixture
def hostlo_topo():
    """Pod split across two VMs joined by a hostlo multiplexed loopback."""
    base = build_host_with_client()
    guest_a = add_vm(base, "vm1", "192.168.122.11")
    guest_b = add_vm(base, "vm2", "192.168.122.12")

    tap = HostloTap("hostlo0")
    base.host.attach(tap)

    frag_a = NetworkNamespace("pod1-a", kind="container", domain=guest_a.domain)
    frag_b = NetworkNamespace("pod1-b", kind="container", domain=guest_b.domain)
    ep_a, ep_b = HostloEndpoint("hlo0", mac()), HostloEndpoint("hlo0b", mac())
    ep_a.assign_ip(ip("10.88.0.2"), cidr("10.88.0.0/24"))
    ep_b.assign_ip(ip("10.88.0.3"), cidr("10.88.0.0/24"))
    tap.add_queue(ep_a)
    tap.add_queue(ep_b)
    frag_a.attach(ep_a)
    frag_b.attach(ep_b)
    frag_a.routes.add_on_link(cidr("10.88.0.0/24"), "hlo0")
    frag_b.routes.add_on_link(cidr("10.88.0.0/24"), "hlo0b")
    return Topo(
        **base.__dict__,
        guest_a=guest_a, guest_b=guest_b,
        frag_a=frag_a, frag_b=frag_b, hostlo=tap,
    )


@pytest.fixture
def overlay_topo():
    """Docker overlay: VXLAN tunnels between per-VM overlay bridges."""
    base = build_host_with_client()
    guest_a = add_vm(base, "vm1", "192.168.122.11")
    guest_b = add_vm(base, "vm2", "192.168.122.12")

    def add_overlay(guest, vm_ip, cont_name, cont_addr, remote_vtep):
        ovbr = Bridge(f"ovbr-{guest.name}")
        ovbr.assign_ip(
            ip("10.0.9.1") if guest is guest_a else ip("10.0.9.254"),
            cidr("10.0.9.0/24"),
        )
        guest.attach(ovbr)
        vx = VxlanTunnel(f"vx-{guest.name}", vni=256, underlay_ip=ip(vm_ip))
        guest.attach(vx)
        ovbr.add_port(vx)
        vx.add_remote(cidr("10.0.9.0/24"), ip(remote_vtep))
        guest.routes.add_on_link(cidr("10.0.9.0/24"), f"ovbr-{guest.name}")

        cont = NetworkNamespace(cont_name, kind="container", domain=guest.domain)
        pair = VethPair("eth0", f"veth-{cont_name}", mac(), mac())
        pair.a.assign_ip(ip(cont_addr), cidr("10.0.9.0/24"))
        cont.attach(pair.a)
        guest.attach(pair.b)
        ovbr.add_port(pair.b)
        cont.routes.add_on_link(cidr("10.0.9.0/24"), "eth0")
        return cont

    cont_a = add_overlay(guest_a, "192.168.122.11", "cont-a", "10.0.9.2",
                         "192.168.122.12")
    cont_b = add_overlay(guest_b, "192.168.122.12", "cont-b", "10.0.9.3",
                         "192.168.122.11")
    return Topo(
        **base.__dict__,
        guest_a=guest_a, guest_b=guest_b, cont_a=cont_a, cont_b=cont_b,
    )

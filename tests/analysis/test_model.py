"""Analytic model vs discrete-event simulation: they must agree."""

import pytest

from repro.analysis import (
    predict_rr_latency,
    predict_stream_throughput,
    sweep_message_sizes,
)
from repro.core import DeploymentMode, build_scenario
from repro.core.testbed import default_testbed
from repro.workloads import NetperfTcpStream, NetperfUdpRR

MODES = [
    DeploymentMode.NOCONT,
    DeploymentMode.NAT,
    DeploymentMode.BRFUSION,
    DeploymentMode.SAMENODE,
    DeploymentMode.HOSTLO,
    DeploymentMode.OVERLAY,
    DeploymentMode.NAT_CROSS,
]


@pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
def test_stream_prediction_matches_des(mode):
    tb = default_testbed(seed=31, vms=2)
    scenario = build_scenario(tb, mode)
    forward, _ = scenario.paths("tcp")
    ack = scenario.ack_path("tcp")
    prediction = predict_stream_throughput(tb.engine, forward, ack, 1024,
                                           window=128)
    result = NetperfTcpStream(window=128).run(scenario, 1024,
                                              duration_s=0.012)
    # The DES adds queueing, draining and scheduling slack on top of the
    # closed form; agreement within 30 % across every mode is the check.
    ratio = result.throughput_bps / prediction.throughput_bps
    assert 0.6 <= ratio <= 1.15, (mode, ratio, prediction)


@pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
def test_rr_prediction_matches_des(mode):
    tb = default_testbed(seed=31, vms=2)
    scenario = build_scenario(tb, mode)
    forward, reverse = scenario.paths("udp")
    predicted = predict_rr_latency(tb.engine, forward, reverse, 1024)
    result = NetperfUdpRR().run(scenario, 1024, transactions=150)
    # The recorded samples carry multiplicative jitter (mean 1).
    ratio = result.latency.mean / predicted
    assert 0.8 <= ratio <= 1.25, (mode, ratio)


def test_bottleneck_identification():
    tb = default_testbed(seed=31, vms=2)
    hostlo = build_scenario(tb, DeploymentMode.HOSTLO)
    forward, _ = hostlo.paths("tcp")
    prediction = predict_stream_throughput(
        tb.engine, forward, hostlo.ack_path("tcp"), 1024
    )
    # The hostlo kernel thread is the §4.2 serialization point.
    assert prediction.bottleneck_domain.startswith("kthread:")
    assert not prediction.window_bound


def test_small_window_becomes_the_bound():
    tb = default_testbed(seed=31, vms=2)
    scenario = build_scenario(tb, DeploymentMode.NOCONT)
    forward, _ = scenario.paths("tcp")
    prediction = predict_stream_throughput(
        tb.engine, forward, scenario.ack_path("tcp"), 1024, window=2
    )
    assert prediction.window_bound


def test_sweep_is_instant_and_monotone_for_nocont():
    tb = default_testbed(seed=31, vms=2)
    scenario = build_scenario(tb, DeploymentMode.NOCONT)
    forward, reverse = scenario.paths("tcp")
    rows = sweep_message_sizes(
        tb.engine, forward, reverse, scenario.ack_path("tcp"),
        sizes=(64, 256, 1024, 4096, 16384),
    )
    throughputs = [r["throughput_mbps"] for r in rows]
    assert throughputs == sorted(throughputs)
    assert rows[0]["rr_latency_us"] < rows[-1]["rr_latency_us"]

"""Tests for statistics and CPU breakdown collection."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.metrics import Cdf, CpuBreakdown, SampleStats, collect_breakdowns
from repro.metrics.cpu import breakdown_of
from repro.sim import CpuResource, Environment


class TestSampleStats:
    def test_basic_summary(self):
        stats = SampleStats.from_samples([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.minimum == 1.0 and stats.maximum == 4.0
        assert stats.p50 == pytest.approx(2.5)

    def test_single_sample(self):
        stats = SampleStats.from_samples([5.0])
        assert stats.std == 0.0
        assert stats.p99 == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            SampleStats.from_samples([])

    def test_cv(self):
        stats = SampleStats.from_samples([1.0, 3.0])
        assert stats.cv == pytest.approx(stats.std / 2.0)

    @given(st.lists(st.floats(min_value=0.001, max_value=1e6),
                    min_size=2, max_size=50))
    def test_percentiles_ordered_property(self, samples):
        stats = SampleStats.from_samples(samples)
        assert (stats.minimum <= stats.p25 <= stats.p50 <= stats.p75
                <= stats.p90 <= stats.p99 <= stats.maximum)


class TestCdf:
    def test_quantiles(self):
        cdf = Cdf.from_samples([3.0, 1.0, 2.0, 4.0])
        assert cdf.values == (1.0, 2.0, 3.0, 4.0)
        assert cdf.quantile(0.0) == 1.0
        assert cdf.quantile(1.0) == 4.0

    def test_fraction_below(self):
        cdf = Cdf.from_samples([1.0, 2.0, 3.0, 4.0])
        assert cdf.fraction_below(2.5) == pytest.approx(0.5)
        assert cdf.fraction_below(0.5) == 0.0

    def test_points_monotone(self):
        cdf = Cdf.from_samples(np.linspace(1, 10, 20))
        points = cdf.points()
        fractions = [f for _, f in points]
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Cdf.from_samples([])
        with pytest.raises(ConfigurationError):
            Cdf.from_samples([1.0]).quantile(1.5)


class TestCpuBreakdown:
    def test_totals_and_shares(self):
        bd = CpuBreakdown(usr=1.0, sys=2.0, soft=1.0, guest=4.0,
                          window_s=2.0, cores=4)
        assert bd.total == 8.0
        assert bd.kernel == 3.0
        assert bd.cores_used() == 4.0
        assert bd.share("usr") == pytest.approx(1 / 8)

    def test_scaled(self):
        bd = CpuBreakdown(usr=1.0, sys=2.0, window_s=1.0)
        doubled = bd.scaled(2.0)
        assert doubled.usr == 2.0 and doubled.sys == 4.0

    def test_zero_window(self):
        bd = CpuBreakdown(usr=1.0, window_s=0.0)
        assert bd.cores_used() == 0.0

    def test_breakdown_of_reads_accounts(self):
        env = Environment()
        cpu = CpuResource(env, cores=2, freq_hz=1000.0)

        def proc():
            yield cpu.execute(500, account="usr")
            yield cpu.execute(1000, account="soft")

        env.process(proc())
        env.run()
        bd = breakdown_of(cpu, window_s=env.now)
        assert bd.usr == pytest.approx(0.5)
        assert bd.soft == pytest.approx(1.0)
        assert bd.guest == 0.0


class TestCollectBreakdowns:
    def make(self):
        env = Environment()
        host = CpuResource(env, cores=12, freq_hz=1000.0, name="host")
        vm1 = CpuResource(env, cores=5, freq_hz=1000.0, name="vm1")
        vm2 = CpuResource(env, cores=5, freq_hz=1000.0, name="vm2")

        def proc():
            yield host.execute(100, account="sys")
            yield vm1.execute(200, account="usr")
            yield vm2.execute(300, account="soft")

        env.process(proc())
        env.run()
        return env, host, {"vm:a": vm1, "vm:b": vm2}

    def test_guest_is_sum_of_vm_busy(self):
        env, host, vms = self.make()
        result = collect_breakdowns(host, vms, window_s=env.now)
        assert result["host"].guest == pytest.approx(0.5)
        assert result["host"].sys == pytest.approx(0.1)
        assert result["vm:a"].usr == pytest.approx(0.2)

    def test_host_extra_sys_folds_kernel_threads(self):
        env, host, vms = self.make()
        result = collect_breakdowns(host, vms, window_s=env.now,
                                    host_extra_sys=0.25)
        assert result["host"].sys == pytest.approx(0.35)

    def test_vm_soft_extra_folds_softirq(self):
        env, host, vms = self.make()
        result = collect_breakdowns(
            host, vms, window_s=env.now, vm_soft_extra={"vm:a": 0.4}
        )
        assert result["vm:a"].soft == pytest.approx(0.4)
        # softirq time runs on a vCPU → counted as host guest time too.
        assert result["host"].guest == pytest.approx(0.9)

    def test_extra_pools_reported(self):
        env, host, vms = self.make()
        client = CpuResource(env, cores=2, freq_hz=1000.0, name="client")
        result = collect_breakdowns(host, vms, window_s=env.now,
                                    extra={"client": client})
        assert "client" in result

"""Tests for the virtualization substrate: host, VMM, hot-plug, hostlo."""

import pytest

from repro.errors import HotplugError, TopologyError
from repro.net import resolve_path
from repro.net.addresses import cidr, ip
from repro.net.devices import HostloTap, TapDevice, VirtioNic
from repro.sim import Environment
from repro.virt import PhysicalHost, Vmm


@pytest.fixture
def host():
    return PhysicalHost(Environment())


@pytest.fixture
def vmm(host):
    return Vmm(host)


class TestPhysicalHost:
    def test_default_bridge_exists(self, host):
        br = host.bridge("virbr0")
        assert br.owns_ip(ip("192.168.122.1"))
        assert host.bridges() == ("virbr0",)

    def test_duplicate_bridge_rejected(self, host):
        with pytest.raises(TopologyError):
            host.add_bridge("virbr0", cidr("10.0.0.0/24"))

    def test_add_tenant_bridge(self, host):
        br = host.add_bridge("tenant1", cidr("10.10.0.0/24"))
        assert br.owns_ip(ip("10.10.0.1"))
        assert host.bridge_network("tenant1") == cidr("10.10.0.0/24")

    def test_allocate_address_sequential(self, host):
        first = host.allocate_address("virbr0")
        second = host.allocate_address("virbr0")
        assert first == ip("192.168.122.2")
        assert second == ip("192.168.122.3")

    def test_unknown_bridge_raises(self, host):
        with pytest.raises(TopologyError):
            host.bridge("nope")
        with pytest.raises(TopologyError):
            host.allocate_address("nope")

    def test_client_namespace_wired_to_bridge(self, host):
        ns = host.create_attached_namespace("client", domain="client")
        dev = ns.device("eth0")
        assert dev.primary_ip is not None
        assert dev.peer.bridge is host.default_bridge
        assert ns.routes.lookup(ip("192.168.122.9")) is not None


class TestVmCreation:
    def test_create_vm_full_wiring(self, vmm, host):
        vm = vmm.create_vm("vm1")
        nic = vm.primary_nic
        assert isinstance(nic, VirtioNic)
        assert isinstance(nic.backend, TapDevice)
        assert nic.backend.bridge is host.default_bridge
        assert nic.primary_ip == ip("192.168.122.2")
        assert vm.cpu.cores == 5

    def test_duplicate_vm_rejected(self, vmm):
        vmm.create_vm("vm1")
        with pytest.raises(TopologyError):
            vmm.create_vm("vm1")

    def test_vm_reachable_from_client(self, vmm, host):
        vm = vmm.create_vm("vm1")
        client = host.create_attached_namespace("client", domain="client")
        path = resolve_path(client, vm.primary_nic.primary_ip, 80)
        assert path.stages[-1].domain == "vm:vm1"

    def test_two_vms_reach_each_other(self, vmm):
        vm1 = vmm.create_vm("vm1")
        vm2 = vmm.create_vm("vm2")
        path = resolve_path(vm1.ns, vm2.primary_nic.primary_ip, 22)
        names = path.stage_names()
        assert "bridge_fwd" in names  # via the host bridge
        assert path.stages[-1].domain == "vm:vm2"

    def test_destroy_vm_cleans_up(self, vmm, host):
        vm = vmm.create_vm("vm1")
        tap = vm.primary_nic.backend
        vmm.destroy_vm("vm1")
        assert not host.default_bridge.has_port(tap)
        with pytest.raises(TopologyError):
            vmm.vm("vm1")

    def test_vm_validation(self, host):
        from repro.virt.vm import VirtualMachine

        with pytest.raises(TopologyError):
            VirtualMachine(host, "bad", vcpus=0)
        with pytest.raises(TopologyError):
            VirtualMachine(host, "bad", memory_gb=0)


class TestBrFusionNicProvisioning:
    def test_add_nic_lands_on_host_bridge(self, vmm, host):
        vm = vmm.create_vm("vm1")
        nic = vmm.add_nic(vm)
        assert nic.namespace is vm.ns
        assert nic.backend.bridge is host.default_bridge
        assert nic.mac is not None

    def test_add_nic_on_tenant_bridge(self, vmm, host):
        host.add_bridge("tenant1", cidr("10.10.0.0/24"))
        vm = vmm.create_vm("vm1")
        nic = vmm.add_nic(vm, bridge="tenant1")
        assert nic.backend.bridge is host.bridge("tenant1")

    def test_agent_finds_nic_by_mac(self, vmm):
        vm = vmm.create_vm("vm1")
        nic = vmm.add_nic(vm)
        assert vm.find_nic_by_mac(nic.mac) is nic

    def test_hotplug_nic_takes_time(self, vmm, host):
        vm = vmm.create_vm("vm1")
        proc = host.env.process(vmm.hotplug_nic(vm))
        host.env.run()
        nic = proc.value
        assert isinstance(nic, VirtioNic)
        assert host.env.now > 0.005  # QMP + PCI probe latency
        assert len(vmm.qmp["vm1"].commands("device_add")) == 1

    def test_hotplug_on_stopped_vm_rejected(self, vmm, host):
        vm = vmm.create_vm("vm1")
        vm.running = False
        with pytest.raises(HotplugError):
            next(vmm.hotplug_nic(vm))

    def test_remove_nic(self, vmm, host):
        vm = vmm.create_vm("vm1")
        nic = vmm.add_nic(vm)
        tap = nic.backend
        vmm.remove_nic(vm, nic.mac)
        assert not host.default_bridge.has_port(tap)
        assert vm.find_nic_by_mac(nic.mac) is None

    def test_remove_unknown_nic_rejected(self, vmm, host):
        vm = vmm.create_vm("vm1")
        from repro.net.addresses import MacAddress

        with pytest.raises(HotplugError):
            vmm.remove_nic(vm, MacAddress(12345))

    def test_guest_names_are_sequential(self, vmm):
        vm = vmm.create_vm("vm1")
        nic1 = vmm.add_nic(vm)
        nic2 = vmm.add_nic(vm)
        assert nic1.name == "eth1"
        assert nic2.name == "eth2"


class TestHostloProvisioning:
    def test_create_hostlo_two_vms(self, vmm, host):
        vm1, vm2 = vmm.create_vm("vm1"), vmm.create_vm("vm2")
        handle = vmm.create_hostlo("hostlo0", [vm1, vm2])
        assert isinstance(handle.tap, HostloTap)
        assert handle.tap.queue_count == 2
        assert handle.endpoints["vm1"].namespace is vm1.ns
        assert set(handle.endpoint_macs()) == {"vm1", "vm2"}

    def test_hostlo_needs_two_vms(self, vmm):
        vm1 = vmm.create_vm("vm1")
        with pytest.raises(TopologyError):
            vmm.create_hostlo("hostlo0", [vm1])
        with pytest.raises(TopologyError):
            vmm.create_hostlo("hostlo1", [vm1, vm1])

    def test_duplicate_hostlo_rejected(self, vmm):
        vm1, vm2 = vmm.create_vm("vm1"), vmm.create_vm("vm2")
        vmm.create_hostlo("hostlo0", [vm1, vm2])
        with pytest.raises(TopologyError):
            vmm.create_hostlo("hostlo0", [vm1, vm2])

    def test_three_vm_hostlo(self, vmm):
        vms = [vmm.create_vm(f"vm{i}") for i in range(3)]
        handle = vmm.create_hostlo("hostlo0", vms)
        assert handle.tap.queue_count == 3

    def test_hotplug_hostlo_takes_time(self, vmm, host):
        vm1, vm2 = vmm.create_vm("vm1"), vmm.create_vm("vm2")
        proc = host.env.process(vmm.hotplug_hostlo("hostlo0", [vm1, vm2]))
        host.env.run()
        handle = proc.value
        assert handle.tap.queue_count == 2
        assert host.env.now > 0.01

    def test_remove_hostlo(self, vmm, host):
        vm1, vm2 = vmm.create_vm("vm1"), vmm.create_vm("vm2")
        handle = vmm.create_hostlo("hostlo0", [vm1, vm2])
        vmm.remove_hostlo("hostlo0")
        assert "hostlo0" not in host.ns.devices
        assert vm1.ns.devices.get(handle.endpoints["vm1"].name) is None
        with pytest.raises(TopologyError):
            vmm.hostlo("hostlo0")


class TestQmp:
    def test_log_records_commands(self, vmm, host):
        vm = vmm.create_vm("vm1")
        host.env.process(vmm.qmp["vm1"].execute("query", what="status"))
        host.env.run()
        log = vmm.qmp["vm1"].commands()
        assert len(log) == 1
        assert log[0].name == "query"
        assert log[0].duration > 0

    def test_unknown_command_rejected(self, vmm, host):
        vmm.create_vm("vm1")
        with pytest.raises(HotplugError):
            next(vmm.qmp["vm1"].execute("explode"))

    def test_disconnected_channel_rejected(self, vmm, host):
        vmm.create_vm("vm1")
        vmm.qmp["vm1"].disconnect()
        with pytest.raises(HotplugError):
            next(vmm.qmp["vm1"].execute("query"))

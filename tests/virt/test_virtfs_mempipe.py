"""Tests for the §4.3 substrates: VirtFS shares and MemPipe channels."""

import pytest

from repro.errors import ConfigurationError, TopologyError
from repro.sim import Environment
from repro.virt import PhysicalHost, Vmm
from repro.virt.mempipe import MempipeManager
from repro.virt.virtfs import VirtfsManager, VirtfsShare


@pytest.fixture
def vms():
    host = PhysicalHost(Environment())
    vmm = Vmm(host)
    return vmm.create_vm("vm1"), vmm.create_vm("vm2")


class TestVirtfs:
    def test_share_mounts_into_multiple_guests(self, vms):
        vm1, vm2 = vms
        manager = VirtfsManager()
        share = manager.create_share("data", "/srv/data")
        share.mount_into(vm1)
        share.mount_into(vm2, read_only=True)
        assert share.guest_count == 2
        assert share.mounted_in("vm1") and share.mounted_in("vm2")
        assert share.mounts["vm2"].read_only

    def test_double_mount_rejected(self, vms):
        vm1, _ = vms
        share = VirtfsManager().create_share("data", "/srv/data")
        share.mount_into(vm1)
        with pytest.raises(TopologyError):
            share.mount_into(vm1)

    def test_unmount(self, vms):
        vm1, _ = vms
        share = VirtfsManager().create_share("data", "/srv/data")
        share.mount_into(vm1)
        share.unmount_from("vm1")
        assert share.guest_count == 0
        with pytest.raises(TopologyError):
            share.unmount_from("vm1")

    def test_manager_lifecycle(self, vms):
        manager = VirtfsManager()
        manager.create_share("a", "/srv/a")
        assert manager.shares() == ("a",)
        with pytest.raises(TopologyError):
            manager.create_share("a", "/srv/a2")
        manager.remove_share("a")
        with pytest.raises(TopologyError):
            manager.share("a")

    def test_remove_mounted_share_rejected(self, vms):
        vm1, _ = vms
        manager = VirtfsManager()
        share = manager.create_share("a", "/srv/a")
        share.mount_into(vm1)
        with pytest.raises(TopologyError):
            manager.remove_share("a")

    def test_unavailable_platform(self):
        manager = VirtfsManager(available=False)
        with pytest.raises(ConfigurationError):
            manager.create_share("a", "/srv/a")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            VirtfsShare("", "/srv/a")
        with pytest.raises(ConfigurationError):
            VirtfsShare("a", "/srv/a", size_gb=0)


class TestMempipe:
    def test_channel_between_coresident_vms(self, vms):
        vm1, vm2 = vms
        manager = MempipeManager()
        channel = manager.create_channel("c", vm1, vm2)
        assert channel.connects("vm1", "vm2")
        assert channel.connects("vm2", "vm1")
        assert manager.channel_between("vm2", "vm1") is channel
        assert manager.channel_between("vm1", "vm3") is None

    def test_same_vm_rejected(self, vms):
        vm1, _ = vms
        with pytest.raises(TopologyError):
            MempipeManager().create_channel("c", vm1, vm1)

    def test_cross_host_rejected(self, vms):
        vm1, _ = vms
        other_host = PhysicalHost(Environment(), name="host2")
        other_vm = Vmm(other_host).create_vm("vmx")
        with pytest.raises(TopologyError):
            MempipeManager().create_channel("c", vm1, other_vm)

    def test_duplicate_name_rejected(self, vms):
        vm1, vm2 = vms
        manager = MempipeManager()
        manager.create_channel("c", vm1, vm2)
        with pytest.raises(TopologyError):
            manager.create_channel("c", vm1, vm2)

    def test_remove_channel(self, vms):
        vm1, vm2 = vms
        manager = MempipeManager()
        manager.create_channel("c", vm1, vm2)
        manager.remove_channel("c")
        with pytest.raises(TopologyError):
            manager.channel("c")

    def test_unavailable_platform(self, vms):
        vm1, vm2 = vms
        with pytest.raises(ConfigurationError):
            MempipeManager(available=False).create_channel("c", vm1, vm2)

    def test_message_latency_scales_with_size(self, vms):
        manager = MempipeManager()
        small = manager.message_latency(64, 2.2e9)
        big = manager.message_latency(65536, 2.2e9)
        assert 0 < small < big

"""The health watchdog: periodic audits, stalled-queue eviction through
the orchestrator, and violation reporting."""

import pytest

from repro import obs
from repro.errors import ConfigurationError
from repro.health import HealthMonitor, HealthScope
from repro.net.devices import TapDevice
from repro.orchestrator import Orchestrator
from repro.orchestrator.pod import ContainerSpec, PodSpec
from repro.sim import Environment
from repro.virt import PhysicalHost, Vmm

INTERVAL_S = 1e-3


def split_pod(name="p"):
    return PodSpec(name=name, containers=tuple(
        ContainerSpec(name=f"c{i}", image="alpine", cpu=2.0, memory_gb=1.0)
        for i in range(3)
    ))


@pytest.fixture
def cluster():
    env = Environment()
    host = PhysicalHost(env)
    vmm = Vmm(host)
    orch = Orchestrator(vmm)
    for i in range(2):
        orch.enroll(vmm.create_vm(f"vm{i}", vcpus=5, memory_gb=4))
    deployment = orch.deploy_pod(split_pod(), network="hostlo",
                                 allow_split=True)
    handle = deployment.plugin_state["hostlo"]
    monitor = HealthMonitor(
        env, lambda: HealthScope.of(orchestrators=(orch,)),
        interval_s=INTERVAL_S, orchestrator=orch,
    )
    return env, host, orch, deployment, handle, monitor


class TestWatchdogEviction:
    def test_stalled_queue_evicted_within_one_interval(self, cluster):
        env, _host, orch, deployment, handle, monitor = cluster
        vm_name = sorted(handle.endpoints)[0]
        handle.tap.stall_queue(handle.endpoints[vm_name])
        stalled_at = env.now
        monitor.start(horizon_s=10 * INTERVAL_S)
        env.run(until=10 * INTERVAL_S)

        assert len(monitor.evictions) == 1
        evicted_at, tap_name, endpoint_name, _drained = monitor.evictions[0]
        assert evicted_at - stalled_at <= INTERVAL_S
        assert tap_name == handle.tap.name
        assert vm_name in endpoint_name
        assert handle.tap.queue_count == 1
        assert vm_name not in handle.endpoints

    def test_eviction_goes_through_recovery_machinery(self, cluster):
        env, _host, orch, deployment, handle, monitor = cluster
        vm_name = sorted(handle.endpoints)[0]
        handle.tap.stall_queue(handle.endpoints[vm_name])
        monitor.start(horizon_s=3 * INTERVAL_S)
        env.run(until=3 * INTERVAL_S)

        evictions = [e for e in orch.recovery_log
                     if e["action"] == "hostlo-evict"]
        assert len(evictions) == 1
        assert evictions[0]["node"] == vm_name
        assert deployment.plugin_state["degraded_nodes"] == [vm_name]

    def test_eviction_drains_queued_frames(self, cluster):
        env, _host, _orch, _deployment, handle, monitor = cluster
        vm_name = sorted(handle.endpoints)[0]
        endpoint = handle.endpoints[vm_name]
        handle.tap.stall_queue(endpoint)
        for _ in range(4):
            endpoint.rx_queue.offer()
        monitor.start(horizon_s=3 * INTERVAL_S)
        env.run(until=3 * INTERVAL_S)
        assert monitor.evictions[0][3] == 4
        assert endpoint.rx_queue.depth == 0

    def test_observe_only_mode_never_evicts(self, cluster):
        env, _host, orch, _deployment, handle, _monitor = cluster
        observer = HealthMonitor(
            env, lambda: HealthScope.of(orchestrators=(orch,)),
            interval_s=INTERVAL_S, orchestrator=orch, evict_stalled=False,
        )
        handle.tap.stall_queue(handle.endpoints[sorted(handle.endpoints)[0]])
        observer.start(horizon_s=3 * INTERVAL_S)
        env.run(until=3 * INTERVAL_S)
        assert observer.evictions == []
        assert handle.tap.stalled_endpoints() != ()


class TestViolationReporting:
    def test_clean_cluster_audits_clean(self, cluster):
        env, _host, _orch, _deployment, _handle, monitor = cluster
        monitor.start(horizon_s=5 * INTERVAL_S)
        env.run(until=5 * INTERVAL_S)
        assert monitor.checks_run >= 4
        assert monitor.violation_count == 0

    def test_leak_fires_callback_and_metrics(self, cluster):
        env, host, _orch, _deployment, _handle, _monitor = cluster
        seen = []
        with obs.capture() as (_tracer, metrics):
            monitor = HealthMonitor(
                env, lambda: HealthScope.of(namespaces=(host.ns,)),
                interval_s=INTERVAL_S, on_violation=seen.append,
            )
            host.ns.attach(TapDevice("tap-leak"))
            found = monitor.check_now()
            assert found and seen == found
            assert monitor.violation_count >= 1
            counter = metrics.counter("health.violations_total")
            assert counter.value(check="leaked-device") >= 1

    def test_stop_halts_the_loop(self, cluster):
        env, _host, _orch, _deployment, _handle, monitor = cluster
        monitor.start()
        env.run(until=2.5 * INTERVAL_S)
        ran = monitor.checks_run
        monitor.stop()
        env.run(until=10 * INTERVAL_S)
        assert monitor.checks_run == ran

    def test_bad_interval_rejected(self, cluster):
        env, _host, _orch, _deployment, _handle, _monitor = cluster
        with pytest.raises(ConfigurationError):
            HealthMonitor(env, HealthScope, interval_s=0.0)

"""Invariant checks: clean topologies audit clean; known breakage
classes are each caught by exactly the right check."""

import pytest

from repro.health import (
    HealthScope,
    check_bridge_consistency,
    check_frame_conservation,
    check_hostlo_liveness,
    check_leaked_devices,
    run_checks,
    stalled_hostlo_queues,
)
from repro.net.arq import ArqReport
from repro.net.devices import NetDevice, TapDevice
from repro.net.forwarding import ForwardingEngine
from repro.sim import Environment
from repro.virt import PhysicalHost, Vmm


@pytest.fixture
def rig():
    host = PhysicalHost(Environment())
    vmm = Vmm(host)
    vms = [vmm.create_vm(f"vm{i}") for i in range(2)]
    handle = vmm.create_hostlo("hlo", vms)
    return host, vmm, vms, handle


class TestCleanTopologies:
    def test_fresh_cluster_has_zero_violations(self, rig):
        _host, vmm, _vms, _handle = rig
        assert run_checks(HealthScope.of(vmms=(vmm,))) == []

    def test_scope_dedupes_shared_namespaces(self, rig):
        host, vmm, _vms, _handle = rig
        scope = HealthScope.of(vmms=(vmm,), hosts=(host, host))
        assert len({id(ns) for ns in scope.namespaces}) \
            == len(scope.namespaces)

    def test_teardown_paths_stay_clean(self, rig):
        _host, vmm, vms, _handle = rig
        vmm.crash_vm("vm0")
        assert run_checks(HealthScope.of(vmms=(vmm,))) == []
        vmm.remove_hostlo("hlo")
        vmm.destroy_vm("vm1")
        assert run_checks(HealthScope.of(vmms=(vmm,))) == []


class TestLeakedDeviceRegression:
    def test_orphaned_host_tap_is_flagged(self, rig):
        host, vmm, _vms, _handle = rig
        # The regression this PR's watchdog exists to catch: a teardown
        # path that forgets the host-side tap.
        host.ns.attach(TapDevice("tap-leak"))
        violations = run_checks(HealthScope.of(vmms=(vmm,)))
        assert len(violations) >= 1
        assert any(v.check == "leaked-device" for v in violations)

    def test_check_pinpoints_the_device(self, rig):
        host, vmm, _vms, _handle = rig
        host.ns.attach(TapDevice("tap-leak"))
        violation = next(
            v for v in check_leaked_devices(HealthScope.of(vmms=(vmm,)))
            if "tap-leak" in v.subject
        )
        assert "backs no vNIC" in violation.detail


class TestBridgeConsistency:
    def test_stale_fdb_entry_is_flagged(self, rig):
        host, vmm, _vms, _handle = rig
        bridge = host.default_bridge
        bridge._fdb["de:ad:be:ef:00:01"] = NetDevice("ghost")
        violations = check_bridge_consistency(HealthScope.of(vmms=(vmm,)))
        assert any("removed port" in v.detail for v in violations)


class TestHostloLiveness:
    def test_queue_serving_detached_endpoint_is_flagged(self, rig):
        _host, vmm, vms, handle = rig
        # Detach the endpoint from its namespace *without* evicting the
        # queue — exactly the bug remove_queue exists to prevent.
        vms[0].ns.detach(handle.endpoints["vm0"])
        violations = check_hostlo_liveness(HealthScope.of(vmms=(vmm,)))
        assert any("detached endpoint" in v.detail for v in violations)

    def test_stalled_queue_is_actionable_not_a_violation(self, rig):
        _host, vmm, _vms, handle = rig
        handle.tap.stall_queue(handle.endpoints["vm1"])
        scope = HealthScope.of(vmms=(vmm,))
        assert run_checks(scope) == []
        assert stalled_hostlo_queues(scope) \
            == [(handle.tap, handle.endpoints["vm1"])]


class TestFrameConservation:
    def test_balanced_ledger_passes(self, rig):
        _host, vmm, vms, _handle = rig
        engine = ForwardingEngine()
        engine.send(vms[0].ns, vms[1].primary_nic.primary_ip, 22)
        scope = HealthScope.of(vmms=(vmm,), forwarding=engine)
        assert check_frame_conservation(scope) == []

    def test_tampered_ledger_is_flagged(self):
        engine = ForwardingEngine()
        engine.frames_sent = 5  # nothing delivered, nothing dropped
        violations = check_frame_conservation(
            HealthScope(forwarding=engine)
        )
        assert len(violations) == 1
        assert violations[0].check == "frame-conservation"

    def test_unconserved_arq_report_is_flagged(self):
        report = ArqReport(messages=2, transmissions=3, delivered=1)
        violations = check_frame_conservation(
            HealthScope(arq_reports=(report,))
        )
        assert any("transmissions" in v.detail for v in violations)

    def test_double_delivery_is_flagged(self):
        report = ArqReport(messages=2, transmissions=2, delivered=2,
                           delivered_ids={0})
        violations = check_frame_conservation(
            HealthScope(arq_reports=(report,))
        )
        assert any("exactly-once" in v.detail for v in violations)


class TestCaptureConservation:
    def test_session_covering_whole_period_passes(self, rig):
        from repro.health import check_capture_conservation
        from repro.net import capture

        _host, vmm, vms, _handle = rig
        engine = ForwardingEngine()
        with capture.use(capture.CaptureSession()) as session:
            engine.send(vms[0].ns, vms[1].primary_nic.primary_ip, 22)
            from repro.net.addresses import ip

            engine.send(vms[0].ns, ip("203.0.113.9"), 80)
        scope = HealthScope.of(vmms=(vmm,), forwarding=engine,
                               capture=session)
        assert check_capture_conservation(scope) == []
        assert run_checks(scope) == []

    def test_partial_session_is_flagged(self, rig):
        from repro.health import check_capture_conservation
        from repro.net import capture

        _host, _vmm, vms, _handle = rig
        engine = ForwardingEngine()
        engine.send(vms[0].ns, vms[1].primary_nic.primary_ip, 22)
        with capture.use(capture.CaptureSession()) as session:
            engine.send(vms[0].ns, vms[1].primary_nic.primary_ip, 22)
        violations = check_capture_conservation(
            HealthScope(forwarding=engine, capture=session)
        )
        assert violations
        assert all(v.check == "capture-conservation" for v in violations)

    def test_scope_without_capture_is_silent(self):
        from repro.health import check_capture_conservation

        assert check_capture_conservation(
            HealthScope(forwarding=ForwardingEngine())
        ) == []
        assert check_capture_conservation(HealthScope()) == []

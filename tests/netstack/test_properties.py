"""Property tests: the netstack contract holds for EVERY registered
backend under random loss — frame conservation at the forwarding
fidelity, exactly-once ARQ delivery at the analytic fidelity."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import faults
from repro.core.testbed import default_testbed
from repro.faults import FaultInjector
from repro.net import ArqConfig
from repro.net.forwarding import ForwardingEngine
from repro.netstack import backend, backend_names

any_backend = st.sampled_from(backend_names())


@settings(max_examples=25, deadline=None)
@given(
    name=any_backend,
    seed=st.integers(min_value=0, max_value=2**16),
    loss=st.floats(min_value=0.0, max_value=0.5),
    messages=st.integers(min_value=1, max_value=12),
    window=st.integers(min_value=1, max_value=8),
)
def test_arq_exactly_once_for_every_backend(
    name, seed, loss, messages, window
):
    """Under the backend's own fault plan at any bounded loss rate,
    every message is delivered exactly once and every transmission is
    accounted for."""
    module = backend(name)
    tb = default_testbed(seed=seed, vms=2)
    ep = module.attach(tb)
    transfer = module.reliable(
        tb.engine, ep, nbytes=1024, messages=messages,
        config=ArqConfig(window=window, max_retries=40),
        rng=tb.rng.stream("arq"),
    )
    injector = FaultInjector(
        module.fault_plan(loss), tb.rng.stream("faults"),
        now_fn=lambda: tb.env.now,
    )
    with faults.use(injector):
        report = transfer.run()
    assert report.conserved()
    assert report.exactly_once
    assert report.delivered_ids <= set(range(messages))
    # Completion is NOT guaranteed: the plan drops per hop, so a long
    # path at loss=0.5 can legitimately exhaust retries. The contract
    # is that exhaustion is the only way to fall short.
    assert report.complete or report.exhausted > 0
    # Every message ends delivered or exhausted (both, when the data
    # arrived but its ACKs never did).
    assert report.delivered + report.exhausted >= messages


@settings(max_examples=25, deadline=None)
@given(
    name=any_backend,
    seed=st.integers(min_value=0, max_value=2**16),
    loss=st.floats(min_value=0.0, max_value=0.6),
    frames=st.integers(min_value=1, max_value=25),
)
def test_frame_ledger_conserved_for_every_backend(name, seed, loss, frames):
    """sent == delivered + sum of labelled drops, whichever stack
    carried the frames and wherever the plan killed them."""
    module = backend(name)
    tb = default_testbed(seed=seed, vms=2)
    ep = module.attach(tb)
    fwd = ForwardingEngine()
    injector = FaultInjector(
        module.fault_plan(loss), tb.rng.stream("faults"),
        now_fn=lambda: tb.env.now,
    )
    with faults.use(injector):
        for _ in range(frames):
            module.send(fwd, ep, payload_bytes=256)
    assert fwd.frames_sent == frames
    assert fwd.frames_sent == (
        fwd.frames_delivered + sum(fwd.drops.values())
    )

"""The offloaded-NSM boundary: device pair, VMM lifecycle, datapaths
at both fidelities, and the ``nsm.drop`` fault vocabulary."""

import pytest

from repro import faults
from repro.core.testbed import default_testbed
from repro.errors import TopologyError
from repro.faults import FaultInjector, FaultPlan, FaultSpec
from repro.net import ArqConfig
from repro.net.addresses import cidr
from repro.net.devices import NsmHostStack, NsmPort
from repro.net.forwarding import ForwardingEngine
from repro.net.path import resolve_path
from repro.netstack.offload import (
    NSM_BRIDGE,
    ensure_nsm_bridge,
    provision_offload,
)
from repro.sim import Environment
from repro.virt import PhysicalHost, Vmm


def nsm_rig():
    """Two VMs with offloaded stacks on a dedicated bridge segment."""
    host = PhysicalHost(Environment())
    vmm = Vmm(host)
    host.add_bridge("nsmbr0", cidr("192.168.150.0/24"))
    vms = [vmm.create_vm(f"vm{i}") for i in range(2)]
    handles = [vmm.create_nsm(vm, bridge="nsmbr0") for vm in vms]
    return host, vmm, vms, handles


class TestDevices:
    def test_bind_is_exclusive(self):
        stack = NsmHostStack("nsm-x")
        port = NsmPort("nsm0")
        stack.bind(port)
        assert stack.port is port and port.backend is stack
        with pytest.raises(TopologyError):
            stack.bind(NsmPort("nsm1"))
        with pytest.raises(TopologyError):
            NsmHostStack("nsm-y").bind(port)

    def test_unbind_drains_both_queues(self):
        stack = NsmHostStack("nsm-x")
        port = NsmPort("nsm0")
        stack.bind(port)
        stack.boundary.offer()
        port.rx_queue.offer()
        assert stack.unbind() == 2
        assert stack.port is None and port.backend is None


class TestVmmLifecycle:
    def test_create_nsm_wires_both_sides(self):
        host, vmm, vms, handles = nsm_rig()
        src, dst = handles
        # Host side: the stack sits on the bridge segment with the VM's
        # address (it answers ARP for the guest).
        assert src.stack.bridge is host.bridge("nsmbr0")
        assert src.stack.primary_ip == src.port.primary_ip
        # Guest side: a thin port, no taps, no vhost.
        assert vms[0].nsm_port() is src.port
        assert vmm.has_nsm("vm0") and vmm.nsm("vm0") is src
        assert src.port.namespace is vms[0].ns

    def test_duplicate_nsm_rejected(self):
        _host, vmm, vms, _handles = nsm_rig()
        with pytest.raises(TopologyError):
            vmm.create_nsm(vms[0], bridge="nsmbr0")

    def test_nsm_lookup_unknown_vm(self):
        _host, vmm, _vms, _handles = nsm_rig()
        assert not vmm.has_nsm("ghost")
        with pytest.raises(TopologyError, match="no NSM"):
            vmm.nsm("ghost")

    def test_remove_nsm_detaches_everything(self):
        host, vmm, vms, handles = nsm_rig()
        vmm.remove_nsm("vm0")
        assert not vmm.has_nsm("vm0")
        assert vms[0].nsm_port() is None
        assert handles[0].stack.name not in host.ns.devices

    def test_destroy_vm_removes_its_nsm(self):
        _host, vmm, _vms, _handles = nsm_rig()
        vmm.destroy_vm("vm0")
        assert not vmm.has_nsm("vm0")


class TestDatapaths:
    def test_frame_walk_crosses_the_boundary(self):
        _host, _vmm, vms, handles = nsm_rig()
        fwd = ForwardingEngine()
        delivery = fwd.send(
            vms[0].ns, handles[1].port.primary_ip, 5001, payload_bytes=512
        )
        assert delivery.delivered and delivery.namespace == "vm1"
        assert delivery.visited("nsm:")
        assert delivery.visited("nsm-rx:")
        assert fwd.frames_sent == fwd.frames_delivered

    def test_analytic_path_runs_host_side(self):
        _host, _vmm, vms, handles = nsm_rig()
        path = resolve_path(vms[0].ns, handles[1].port.primary_ip, 5001)
        names = path.stage_names()
        for stage in ("nsm_doorbell", "nsm_copy", "nsm_host_stack",
                      "nsm_rx"):
            assert stage in names
        assert path.jitter_class == "nsm"
        assert any(d.startswith("kthread:") for d in path.domains())

    def test_crash_stalls_then_restart_resumes(self):
        _host, vmm, vms, handles = nsm_rig()
        fwd = ForwardingEngine()
        dst = handles[1].port.primary_ip
        vmm.crash_vm("vm1")
        # The host-owned stack survives the guest; the guest-down drop
        # is labelled, and the boundary is stalled against new frames.
        assert handles[1].stack.boundary.stalled
        delivery = fwd.send(vms[0].ns, dst, 5001)
        assert not delivery.delivered
        assert fwd.drops.get("nsm-guest-down", 0) == 1
        vmm.restart_vm("vm1")
        assert not handles[1].stack.boundary.stalled
        assert fwd.send(vms[0].ns, dst, 5001).delivered

    def test_boundary_overflow_is_labelled(self):
        host = PhysicalHost(Environment())
        vmm = Vmm(host)
        host.add_bridge("nsmbr0", cidr("192.168.150.0/24"))
        vms = [vmm.create_vm(f"vm{i}") for i in range(2)]
        handles = [vmm.create_nsm(vm, bridge="nsmbr0") for vm in vms]
        fwd = ForwardingEngine()
        boundary = handles[0].stack.boundary
        while boundary.offer():
            pass  # fill the bounded ring
        delivery = fwd.send(vms[0].ns, handles[1].port.primary_ip, 5001)
        assert not delivery.delivered
        assert fwd.drops.get("nsm-overflow") == 1


class TestFaults:
    def test_nsm_drop_targets_the_stack_at_both_fidelities(self):
        _host, vmm, vms, handles = nsm_rig()
        plan = FaultPlan(specs=(
            FaultSpec(kind="nsm.drop", target=handles[0].stack.name,
                      probability=1.0),
        ))
        injector = FaultInjector(plan, vmm.host.rng.stream("faults"))
        fwd = ForwardingEngine()
        with faults.use(injector):
            delivery = fwd.send(
                vms[0].ns, handles[1].port.primary_ip, 5001
            )
        assert not delivery.delivered
        assert fwd.drops == {"nsm-drop": 1}

    def test_arq_labels_nsm_losses(self):
        tb = default_testbed(seed=1, vms=2)
        handles = provision_offload(tb)
        vms = list(tb.vmm.vms.values())
        path = resolve_path(
            vms[0].ns, handles[1].port.primary_ip, 5001
        )
        transfer = tb.engine.reliable_transfer(
            path, 1024, messages=4,
            config=ArqConfig(max_retries=0),
            rng=tb.rng.stream("arq"),
        )
        plan = FaultPlan(specs=(
            FaultSpec(kind="nsm.drop", target="*", probability=1.0),
        ))
        injector = FaultInjector(
            plan, tb.rng.stream("faults"), now_fn=lambda: tb.env.now
        )
        with faults.use(injector):
            report = transfer.run()
        assert report.delivered == 0
        assert set(report.losses) == {"nsm-drop"}
        assert report.conserved()


class TestProvisioning:
    def test_ensure_bridge_is_idempotent(self):
        tb = default_testbed(vms=1)
        assert ensure_nsm_bridge(tb) == NSM_BRIDGE
        assert ensure_nsm_bridge(tb) == NSM_BRIDGE
        assert NSM_BRIDGE in tb.host.bridges()

    def test_provision_is_idempotent_per_vm(self):
        tb = default_testbed(vms=2)
        first = provision_offload(tb)
        second = provision_offload(tb)
        assert [h.stack for h in first] == [h.stack for h in second]

    def test_provision_needs_vms(self):
        tb = default_testbed(vms=1)
        with pytest.raises(TopologyError, match="no VMs"):
            provision_offload(tb, vms=())

"""The NetworkStackModule contract: registry, built-ins, orchestrator
tie-in, and the offloaded backend's refine hook."""

import pytest

from repro.core.testbed import default_testbed
from repro.errors import ConfigurationError
from repro.net.forwarding import ForwardingEngine
from repro.netstack import (
    InVmNat,
    NetworkStackModule,
    backend,
    backend_names,
    backends,
    cni_fallbacks,
    register,
)

EXPECTED = (
    "brfusion", "hostlo", "in_vm_nat", "offloaded_nsm", "vxlan_overlay",
)


class TestRegistry:
    def test_builtins_registered(self):
        assert backend_names() == EXPECTED
        assert tuple(m.name for m in backends()) == EXPECTED

    def test_unknown_backend_lists_registered_names(self):
        with pytest.raises(ConfigurationError) as err:
            backend("tcp_over_carrier_pigeon")
        message = str(err.value)
        assert "tcp_over_carrier_pigeon" in message
        for name in EXPECTED:
            assert name in message

    def test_duplicate_name_rejected(self):
        class Dup(InVmNat):
            pass

        with pytest.raises(ConfigurationError, match="already registered"):
            register(Dup())

    def test_unnamed_rejected(self):
        class Anon(NetworkStackModule):
            def attach(self, tb):  # pragma: no cover - never called
                raise NotImplementedError

        with pytest.raises(ConfigurationError, match="no name"):
            register(Anon())

    def test_cni_fallbacks_declared_by_backends(self):
        assert cni_fallbacks() == (("brfusion", "nat"),)

    def test_orchestrator_default_recovery_uses_registry(self):
        tb = default_testbed(vms=1)
        assert tb.orchestrator.recovery.fallback_for("brfusion") == "nat"
        assert tb.orchestrator.recovery.fallback_for("nat") is None


class TestContract:
    @pytest.mark.parametrize("name", EXPECTED)
    def test_attach_resolve_send(self, name):
        module = backend(name)
        tb = default_testbed(seed=7, vms=2)
        ep = module.attach(tb)
        assert ep.backend == name

        forward = module.resolve(ep)
        reverse = module.resolve(ep, reverse=True)
        assert forward.stages and reverse.stages
        ack = module.ack_path(ep)
        assert "app_recv" not in ack.stage_names()

        fwd = ForwardingEngine()
        delivery = module.send(fwd, ep, payload_bytes=256)
        assert delivery.delivered
        assert fwd.frames_sent == (
            fwd.frames_delivered + sum(fwd.drops.values())
        )
        assert module.capture_taps(ep)
        module.detach(tb, ep)

    @pytest.mark.parametrize("name", EXPECTED)
    def test_reliable_transfer_exactly_once(self, name):
        module = backend(name)
        tb = default_testbed(seed=11, vms=2)
        ep = module.attach(tb)
        report = module.reliable(
            tb.engine, ep, nbytes=1024, messages=6,
            rng=tb.rng.stream("arq"),
        ).run()
        assert report.delivered == 6
        assert report.conserved() and report.exactly_once

    @pytest.mark.parametrize("name", EXPECTED)
    def test_fault_plan_uses_backend_kind(self, name):
        module = backend(name)
        plan = module.fault_plan(0.25)
        (spec,) = tuple(plan)
        assert spec.kind == module.fault_kind
        assert spec.probability == 0.25

    def test_cost_model_hook_defaults_to_base(self):
        tb = default_testbed(vms=1)
        module = backend("in_vm_nat")
        assert module.cost_model(tb.engine.cost_model) is tb.engine.cost_model


class TestOffloadedNsm:
    def test_guest_stack_stages_stripped(self):
        module = backend("offloaded_nsm")
        tb = default_testbed(seed=5, vms=2)
        ep = module.attach(tb)
        path = module.resolve(ep)
        names = path.stage_names()
        assert "stack_tx" not in names and "stack_rx" not in names
        for stage in ("nsm_doorbell", "nsm_copy", "nsm_host_stack", "nsm_rx"):
            assert stage in names
        assert path.jitter_class == "nsm"
        # No guest softirq context either: the host kthread owns RX.
        assert not any(
            d.startswith("softirq:vm:") for d in path.domains()
        )
        assert any(d.startswith("kthread:") for d in path.domains())

    def test_tx_queue_is_the_boundary(self):
        module = backend("offloaded_nsm")
        tb = default_testbed(seed=5, vms=2)
        ep = module.attach(tb)
        src, _dst = ep.detail["handles"]
        assert ep.tx_queue is src.stack.boundary

    def test_attach_reuses_existing_nsms(self):
        module = backend("offloaded_nsm")
        tb = default_testbed(seed=5, vms=2)
        first = module.attach(tb)
        second = module.attach(tb)
        assert (first.detail["handles"][0].stack
                is second.detail["handles"][0].stack)

    def test_detach_removes_the_nsms(self):
        module = backend("offloaded_nsm")
        tb = default_testbed(seed=5, vms=2)
        ep = module.attach(tb)
        module.detach(tb, ep)
        for handle in ep.detail["handles"]:
            assert not tb.vmm.has_nsm(handle.vm)

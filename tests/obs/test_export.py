"""Exporters: JSONL span dump, Chrome trace_event, text summary."""

import json

import pytest

from repro.obs import Tracer
from repro.obs.export import (
    chrome_trace,
    iter_records,
    span_record,
    summary,
    write_chrome_trace,
    write_spans_jsonl,
)


def make_tracer():
    """A tiny two-span, one-event trace."""
    tr = Tracer()
    tr.new_run()
    tr.now = 0.0
    outer = tr.begin("datapath.transfer", "a->b", nbytes=1024)
    stage = tr.begin("datapath.stage", "vhost_tx", parent=outer,
                     domain="kthread:host:vhost:tap0", cycles=1200)
    tr.now = 1e-5
    tr.end(stage)
    tr.event("forward.send", "a->b", delivered=True)
    tr.now = 2e-5
    tr.end(outer)
    return tr


class TestSpanRecord:
    def test_record_shape(self):
        tr = make_tracer()
        outer = tr.spans[0]
        record = span_record(outer)
        assert record["kind"] == "span"
        assert record["cat"] == "datapath.transfer"
        assert record["name"] == "a->b"
        assert record["ts"] == 0.0
        assert record["dur"] == pytest.approx(2e-5)
        assert record["run"] == 1
        assert record["attrs"] == {"nbytes": 1024}
        assert "parent" not in record

    def test_parent_included(self):
        tr = make_tracer()
        stage = tr.spans[1]
        record = span_record(stage)
        assert record["parent"] == tr.spans[0].sid

    def test_iter_records_sorted_and_complete(self):
        tr = make_tracer()
        records = list(iter_records(tr))
        assert len(records) == 3  # 2 spans + 1 event
        stamps = [(r["run"], r["ts"], r["sid"]) for r in records]
        assert stamps == sorted(stamps)
        assert {r["kind"] for r in records} == {"span", "event"}


class TestJsonl:
    def test_every_line_parses(self, tmp_path):
        path = write_spans_jsonl(make_tracer(), tmp_path / "spans.jsonl")
        lines = path.read_text().splitlines()
        assert len(lines) == 3
        for line in lines:
            record = json.loads(line)
            assert {"kind", "cat", "name", "ts", "dur", "run"} <= set(record)

    def test_non_json_attrs_coerced(self, tmp_path):
        class Funny:
            def __str__(self):
                return "funny"

        tr = Tracer()
        tr.end(tr.begin("c", "x", obj=Funny()))
        path = write_spans_jsonl(tr, tmp_path / "s.jsonl")
        assert json.loads(path.read_text())["attrs"]["obj"] == "funny"


class TestChromeTrace:
    def test_structure(self):
        trace = chrome_trace(make_tracer())
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        events = trace["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        meta = [e for e in events if e["ph"] == "M"]
        assert len(complete) == 2
        assert len(instants) == 1
        assert all("pid" in e and "tid" in e for e in complete + instants)

    def test_timestamps_scaled_to_microseconds(self):
        trace = chrome_trace(make_tracer())
        stage = next(e for e in trace["traceEvents"]
                     if e.get("name") == "vhost_tx")
        assert stage["ts"] == 0.0
        assert stage["dur"] == pytest.approx(10.0)  # 1e-5 s = 10 us

    def test_domain_becomes_thread(self):
        trace = chrome_trace(make_tracer())
        names = {e["args"]["name"] for e in trace["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert "kthread:host:vhost:tap0" in names
        assert "datapath.transfer" in names  # no domain -> category track

    def test_process_named_per_run(self):
        trace = chrome_trace(make_tracer())
        procs = [e for e in trace["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "process_name"]
        assert procs and procs[0]["args"]["name"] == "sim-run-1"

    def test_file_is_valid_json(self, tmp_path):
        path = write_chrome_trace(make_tracer(), tmp_path / "t.trace.json")
        loaded = json.loads(path.read_text())
        assert isinstance(loaded["traceEvents"], list)


class TestSummary:
    def test_groups_and_ranks_by_sim_time(self):
        text = summary(make_tracer())
        lines = text.splitlines()
        assert "top 2 of 2 span groups" in lines[0]
        assert "(2 spans, 1 events)" in lines[0]
        # transfer (20 us) outranks the stage (10 us)
        assert lines.index(
            next(l for l in lines if "datapath.transfer:a->b" in l)
        ) < lines.index(next(l for l in lines if "vhost_tx" in l))
        assert "cycles" in lines[1]  # cycles column present when attr set

    def test_top_limits_rows(self):
        tr = Tracer()
        for i in range(5):
            tr.end(tr.begin("c", f"n{i}"))
        text = summary(tr, top=2)
        assert "top 2 of 5 span groups" in text

    def test_empty_trace(self):
        tr = Tracer()
        tr.event("c", "x")
        assert summary(tr) == "(no spans recorded; 1 events)"

    def test_wall_column_when_profiling(self):
        tr = Tracer(self_profile=True)
        tr.end(tr.begin("c", "x"))
        assert "wall total" in summary(tr)


class TestSummaryCounters:
    """The satellite fix: labelled counter series appear in the summary."""

    def make_metrics(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        dropped = registry.counter("net.frames_dropped")
        dropped.inc(14, reason="link-loss")
        dropped.inc(3, reason="corrupt")
        registry.counter("net.frames_sent").inc(100)
        registry.gauge("queue.depth").set(5)  # gauges stay out
        return registry

    def test_labelled_series_are_rows(self):
        text = summary(make_tracer(), metrics=self.make_metrics())
        assert 'net.frames_dropped{reason="link-loss"}  14' in text
        assert 'net.frames_dropped{reason="corrupt"}' in text
        assert "net.frames_sent" in text
        assert "queue.depth" not in text

    def test_counters_ranked_by_value(self):
        text = summary(make_tracer(), metrics=self.make_metrics())
        lines = text.splitlines()
        sent = next(i for i, l in enumerate(lines) if "frames_sent" in l)
        loss = next(i for i, l in enumerate(lines) if "link-loss" in l)
        corrupt = next(i for i, l in enumerate(lines) if "corrupt" in l)
        assert sent < loss < corrupt

    def test_counter_table_without_spans(self):
        from repro.obs import Tracer

        text = summary(Tracer(), metrics=self.make_metrics())
        assert text.startswith("(no spans recorded")
        assert "net.frames_dropped" in text

    def test_no_metrics_keeps_old_shape(self):
        assert "counters" not in summary(make_tracer())

    def test_empty_registry_adds_nothing(self):
        from repro.obs.metrics import MetricsRegistry

        assert "counters" not in summary(make_tracer(),
                                         metrics=MetricsRegistry())


class TestDistributedChromeTrace:
    @staticmethod
    def make_trace_doc():
        """A small but representative service trace document."""
        t0 = 1000.0
        spans = [
            {"trace_id": "tr1", "span_id": "parse", "name": "http.parse",
             "start_s": t0, "end_s": t0 + 0.01, "kind": "service",
             "worker": "http"},
            {"trace_id": "tr1", "span_id": "job", "name": "job",
             "start_s": t0, "end_s": t0 + 1.0, "parent_id": "parse",
             "kind": "service", "worker": "service"},
            {"trace_id": "tr1", "span_id": "w1", "name": "worker",
             "start_s": t0 + 0.2, "end_s": t0 + 0.9, "parent_id": "job",
             "kind": "service", "worker": "shard-0",
             "tags": {"outcome": "ok"}},
            {"trace_id": "tr1", "span_id": "w1.r0s1", "name": "engine",
             "start_s": 0.0, "end_s": 1e-5, "parent_id": "w1",
             "kind": "sim", "worker": "pid-42"},
            {"trace_id": "tr1", "span_id": "notify", "name": "sse.notify",
             "start_s": t0 + 1.0, "end_s": t0 + 1.0, "parent_id": "job",
             "kind": "service", "worker": "service"},
        ]
        return {"job_id": "j00000", "trace_id": "tr1", "spans": spans}

    def test_one_process_row_per_worker(self):
        from repro.obs.export import distributed_chrome_trace

        doc = distributed_chrome_trace(self.make_trace_doc())
        rows = {e["args"]["name"] for e in doc["traceEvents"]
                if e.get("name") == "process_name"}
        assert rows == {"http", "service", "shard-0", "pid-42"}

    def test_wall_time_rebased_to_trace_start(self):
        from repro.obs.export import distributed_chrome_trace

        doc = distributed_chrome_trace(self.make_trace_doc())
        parse = next(e for e in doc["traceEvents"]
                     if e.get("name") == "http.parse")
        assert parse["ts"] == pytest.approx(0.0)
        worker = next(e for e in doc["traceEvents"]
                      if e.get("name") == "worker")
        assert worker["ts"] == pytest.approx(0.2 * 1e6)

    def test_sim_spans_nest_inside_their_worker_span(self):
        from repro.obs.export import distributed_chrome_trace

        doc = distributed_chrome_trace(self.make_trace_doc())
        engine = next(e for e in doc["traceEvents"]
                      if e.get("name") == "engine")
        worker = next(e for e in doc["traceEvents"]
                      if e.get("name") == "worker")
        assert engine["cat"] == "sim"
        # Offset by the worker span's wall start: renders inside it.
        assert engine["ts"] >= worker["ts"]
        assert engine["ts"] + engine["dur"] <= (
            worker["ts"] + worker["dur"])

    def test_instant_service_spans_become_instants(self):
        from repro.obs.export import distributed_chrome_trace

        doc = distributed_chrome_trace(self.make_trace_doc())
        notify = next(e for e in doc["traceEvents"]
                      if e.get("name") == "sse.notify")
        assert notify["ph"] == "i"

    def test_empty_trace_is_valid_and_writable(self, tmp_path):
        from repro.obs.export import (
            distributed_chrome_trace,
            write_distributed_chrome_trace,
        )

        assert distributed_chrome_trace({"spans": []})["traceEvents"] == []
        path = write_distributed_chrome_trace(
            self.make_trace_doc(), tmp_path / "dist.trace.json")
        parsed = json.loads(path.read_text())
        assert parsed["displayTimeUnit"] == "ms"
        assert parsed["traceEvents"]

"""Tracer core: spans, parents, sampling, the no-op path, install."""

import pytest

from repro import obs
from repro.obs import NULL, NullTracer, Tracer


class TestSpans:
    def test_begin_end_records_interval(self):
        tr = Tracer()
        tr.now = 1.0
        span = tr.begin("cat", "work", cpu=0)
        tr.now = 1.5
        tr.end(span, cycles=42)
        assert span.start == 1.0
        assert span.end == 1.5
        assert span.duration == pytest.approx(0.5)
        assert span.attrs == {"cpu": 0, "cycles": 42}
        assert tr.spans == [span]

    def test_open_span_has_zero_duration(self):
        tr = Tracer()
        span = tr.begin("cat", "open")
        assert span.end is None
        assert span.duration == 0.0

    def test_parent_links_by_sid(self):
        tr = Tracer()
        parent = tr.begin("cat", "outer")
        child = tr.begin("cat", "inner", parent=parent)
        assert child.parent == parent.sid
        assert parent.parent is None

    def test_interleaved_spans_keep_their_own_parents(self):
        # Two "processes" interleave: explicit parent refs, not a stack.
        tr = Tracer()
        a = tr.begin("xfer", "a")
        b = tr.begin("xfer", "b")
        a_stage = tr.begin("stage", "a1", parent=a)
        b_stage = tr.begin("stage", "b1", parent=b)
        tr.end(a_stage)
        tr.end(b_stage)
        assert a_stage.parent == a.sid
        assert b_stage.parent == b.sid

    def test_context_manager_ends_span(self):
        tr = Tracer()
        tr.now = 2.0
        with tr.span("cat", "block") as span:
            tr.now = 3.0
        assert span.end == 3.0

    def test_end_none_is_noop(self):
        tr = Tracer()
        tr.end(None)  # sampled-out spans come back as None

    def test_events_are_instant(self):
        tr = Tracer()
        tr.now = 4.0
        ev = tr.event("sched", "place", node="vm0")
        assert ev.start == ev.end == 4.0
        assert ev.duration == 0.0
        assert tr.events == [ev]
        assert tr.spans == []

    def test_category_filters(self):
        tr = Tracer()
        tr.begin("a", "x")
        tr.begin("b", "y")
        tr.event("a", "z")
        assert [s.name for s in tr.spans_in("a")] == ["x"]
        assert [s.name for s in tr.events_in("a")] == ["z"]

    def test_clear(self):
        tr = Tracer()
        tr.begin("a", "x")
        tr.event("a", "y")
        tr.clear()
        assert tr.spans == [] and tr.events == []

    def test_new_run_increments(self):
        tr = Tracer()
        assert tr.run_id == 0
        assert tr.new_run() == 1
        span = tr.begin("a", "x")
        assert span.run == 1


class TestSampling:
    def test_rate_is_deterministic_fraction(self):
        tr = Tracer(sampling={"hot": 0.1})
        kept = sum(tr.begin("hot", "x") is not None for _ in range(1000))
        assert kept == 100

    def test_zero_rate_drops_everything(self):
        tr = Tracer(sampling={"hot": 0.0})
        assert all(tr.begin("hot", "x") is None for _ in range(50))
        assert tr.spans == []

    def test_unlisted_categories_kept_fully(self):
        tr = Tracer(sampling={"hot": 0.0})
        assert all(tr.begin("cold", "x") is not None for _ in range(50))

    def test_sampling_is_reproducible_across_tracers(self):
        def picks():
            tr = Tracer(sampling={"c": 0.3})
            return [tr.begin("c", "x") is not None for _ in range(20)]

        assert picks() == picks()  # no RNG involved

    def test_set_sampling_applies_to_events_too(self):
        tr = Tracer()
        tr.set_sampling("ev", 0.5)
        kept = sum(tr.event("ev", "x") is not None for _ in range(10))
        assert kept == 5


class TestSelfProfile:
    def test_wall_clock_measured_when_enabled(self):
        tr = Tracer(self_profile=True)
        span = tr.begin("cat", "x")
        tr.end(span)
        assert span.wall_s is not None and span.wall_s >= 0.0

    def test_wall_clock_off_by_default(self):
        tr = Tracer()
        span = tr.begin("cat", "x")
        tr.end(span)
        assert span.wall_s is None


class TestNullTracer:
    def test_disabled_flag(self):
        assert NULL.enabled is False
        assert Tracer.enabled is True

    def test_all_operations_are_noops(self):
        null = NullTracer()
        assert null.begin("a", "x") is None
        null.end(None)
        assert null.event("a", "x") is None
        with null.span("a", "x") as span:
            assert span is None
        assert null.spans_in("a") == [] and null.events_in("a") == []
        assert null.new_run() == 0
        null.set_sampling("a", 0.5)
        null.clear()
        assert list(null.spans) == [] and list(null.events) == []


class TestActiveTracer:
    def test_default_is_null(self):
        assert obs.tracer() is NULL

    def test_install_uninstall(self):
        mine = Tracer()
        obs.install(tracer=mine)
        try:
            assert obs.tracer() is mine
        finally:
            obs.uninstall()
        assert obs.tracer() is NULL

    def test_capture_installs_and_restores(self):
        before_metrics = obs.metrics()
        with obs.capture() as (tr, mx):
            assert obs.tracer() is tr
            assert obs.metrics() is mx
            assert tr.enabled
        assert obs.tracer() is NULL
        assert obs.metrics() is before_metrics

    def test_capture_nests(self):
        with obs.capture() as (outer, _):
            with obs.capture() as (inner, _mx):
                assert obs.tracer() is inner
            assert obs.tracer() is outer

    def test_capture_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with obs.capture():
                raise RuntimeError("boom")
        assert obs.tracer() is NULL


class TestEngineIntegration:
    def test_environment_adopts_active_tracer(self):
        from repro.sim import Environment

        with obs.capture() as (tr, _):
            env = Environment()
            assert env.tracer is tr
            assert tr.run_id == 1  # new_run() per environment

    def test_engine_advances_tracer_clock(self):
        from repro.sim import Environment

        with obs.capture() as (tr, _):
            env = Environment()

            def proc(env):
                yield env.timeout(0.25)

            env.run(until=env.process(proc(env)))
            assert tr.now == pytest.approx(0.25)
            assert any(s.category == "sim.step" for s in tr.spans)

    def test_disabled_tracer_records_nothing(self):
        from repro.core import DeploymentMode, build_scenario
        from repro.core.testbed import default_testbed

        assert obs.tracer() is NULL
        tb = default_testbed(seed=3, vms=2)
        sc = build_scenario(tb, DeploymentMode.NAT)
        fwd, _rev = sc.paths()
        tb.env.run(until=tb.env.process(tb.engine.transfer(fwd, 1024)))
        assert list(NULL.spans) == []
        assert list(NULL.events) == []

    def test_environment_snapshot_survives_uninstall(self):
        # The env keeps tracing into the tracer it saw at construction.
        from repro.sim import Environment

        with obs.capture() as (tr, _):
            env = Environment()
        assert obs.tracer() is NULL
        assert env.tracer is tr

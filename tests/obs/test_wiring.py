"""The instrumentation wired into each layer actually records."""

import pytest

from repro import obs
from repro.core import DeploymentMode, build_scenario
from repro.core.testbed import default_testbed
from repro.sim import Environment
from repro.virt import PhysicalHost, Vmm


def hotplug_one_nic(vmm, host, name="vm1"):
    vm = vmm.create_vm(name)
    proc = host.env.process(vmm.hotplug_nic(vm))
    host.env.run()
    return vm, proc.value


class TestVirtWiring:
    def test_hotplug_latency_histogram_always_recorded(self):
        # Rare events record into the active registry even untraced.
        obs.uninstall()
        host = PhysicalHost(Environment())
        vmm = Vmm(host)
        hotplug_one_nic(vmm, host)
        hist = obs.metrics().get("virt.hotplug_latency_s")
        assert hist.count(kind="nic") == 1
        assert hist.total(kind="nic") > 0.005  # QMP + PCI probe latency
        obs.uninstall()

    def test_hotplug_span_when_tracing(self):
        with obs.capture() as (tracer, metrics):
            host = PhysicalHost(Environment())
            vmm = Vmm(host)
            hotplug_one_nic(vmm, host)
            spans = tracer.spans_in("virt.hotplug")
            assert len(spans) == 1
            span = spans[0]
            assert span.name == "nic:vm1"
            assert span.duration > 0
            assert span.attrs["latency_s"] == pytest.approx(span.duration)
            assert metrics.get("virt.hotplug_latency_s").count(kind="nic") == 1

    def test_hostlo_hotplug_recorded(self):
        with obs.capture() as (tracer, metrics):
            host = PhysicalHost(Environment())
            vmm = Vmm(host)
            vms = [vmm.create_vm(f"vm{i}") for i in range(2)]
            proc = host.env.process(vmm.hotplug_hostlo("hlo1", vms))
            host.env.run()
            assert proc.value is not None
            assert tracer.spans_in("virt.hotplug")[0].name == "hostlo:hlo1"
            assert metrics.get("virt.hotplug_latency_s").count(kind="hostlo") == 1

    def test_qmp_latency_and_events(self):
        with obs.capture() as (tracer, metrics):
            host = PhysicalHost(Environment())
            vmm = Vmm(host)
            hotplug_one_nic(vmm, host)
            hist = metrics.get("virt.qmp_latency_s")
            assert hist.count(command="device_add") == 1
            events = tracer.events_in("virt.qmp")
            assert any(e.name == "device_add" and e.attrs["vm"] == "vm1"
                       for e in events)

    def test_vm_observe_queues(self):
        with obs.capture() as (_tracer, metrics):
            host = PhysicalHost(Environment())
            vmm = Vmm(host)
            vm = vmm.create_vm("vm1")
            depth = vm.observe_queues()
            assert depth == vm.cpu.queue_depth
            assert metrics.get("vm.vcpu_queue_depth").value(vm="vm1") == depth
            assert metrics.get("vm.virtio_nics").value(vm="vm1") == 1


class TestOrchestratorWiring:
    def test_scheduler_and_cni_events(self):
        with obs.capture() as (tracer, _):
            tb = default_testbed(seed=4, vms=2)
            build_scenario(tb, DeploymentMode.NAT)
            place = tracer.events_in("sched.place")
            assert place and all("policy" in e.attrs for e in place)
            attach = tracer.events_in("cni.attach")
            assert attach and any(e.attrs["plugin"] == "nat" for e in attach)

    def test_split_placement_flagged(self):
        with obs.capture() as (tracer, _):
            tb = default_testbed(seed=4, vms=2)
            build_scenario(tb, DeploymentMode.HOSTLO)
            attach = [e for e in tracer.events_in("cni.attach")
                      if e.attrs["plugin"] == "hostlo"]
            assert any(e.attrs["split"] for e in attach)
            split = next(e for e in attach if e.attrs["split"])
            assert "," in split.attrs["nodes"]  # two nodes named


class TestForwardingWiring:
    def test_send_events_recorded(self):
        from repro.net.forwarding import ForwardingEngine

        with obs.capture() as (tracer, _):
            tb = default_testbed(seed=4, vms=2)
            scenario = build_scenario(tb, DeploymentMode.NAT)
            tracer.clear()  # keep only the frame walk below
            delivery = ForwardingEngine().send(
                tb.client_ns, scenario.dst_addr, scenario.dst_port
            )
            assert delivery.delivered
            sends = tracer.events_in("forward.send")
            assert len(sends) == 1
            assert sends[0].attrs["delivered"]
            hops = tracer.events_in("forward.hop")
            assert len(hops) == sends[0].attrs["hops"]


class TestDatapathMetrics:
    def test_queue_depth_gauge_sampled_during_transfer(self):
        with obs.capture() as (_tracer, metrics):
            tb = default_testbed(seed=4, vms=2)
            scenario = build_scenario(tb, DeploymentMode.NAT)
            forward, _rev = scenario.paths()
            tb.env.run(
                until=tb.env.process(tb.engine.transfer(forward, 1280))
            )
            gauge = metrics.get("cpu.queue_depth")
            domains = {key for key, _ in gauge.series().items()}
            assert domains  # one series per CPU domain touched

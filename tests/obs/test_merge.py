"""Mergeable observability: record-level export, snapshot merging."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs import capture
from repro.obs.export import (
    iter_records,
    records_chrome_trace,
    write_records_chrome_trace,
    write_records_jsonl,
)
from repro.obs.metrics import MetricsRegistry, merge_snapshots, render_snapshot


def make_records():
    with capture() as (tracer, _):
        tracer.new_run()
        span = tracer.begin("cat.a", "outer", domain="cpu0")
        tracer.now = 1.5
        tracer.end(span)
        tracer.event("cat.b", "tick", n=3)
    return list(iter_records(tracer))


class TestRecordExport:
    def test_round_trips_through_jsonl(self, tmp_path):
        records = make_records()
        path = write_records_jsonl(records, tmp_path / "r.jsonl")
        reloaded = [json.loads(l) for l in path.read_text().splitlines()]
        assert reloaded == records

    def test_chrome_trace_from_records_matches_live_export(self):
        records = make_records()
        trace = records_chrome_trace(records)
        events = trace["traceEvents"]
        spans = [e for e in events if e.get("ph") == "X"]
        instants = [e for e in events if e.get("ph") == "i"]
        assert len(spans) == 1 and len(instants) == 1
        assert spans[0]["dur"] == pytest.approx(1.5e6)
        assert spans[0]["args"] == {"domain": "cpu0"}

    def test_run_names_label_processes(self, tmp_path):
        records = make_records()
        path = write_records_chrome_trace(
            records, tmp_path / "t.json", run_names={1: "fig04@quick/r1"}
        )
        events = json.loads(path.read_text())["traceEvents"]
        names = [e for e in events if e.get("name") == "process_name"]
        assert names and names[0]["args"]["name"] == "fig04@quick/r1"

    def test_shifted_runs_stay_disjoint(self):
        shifted = [dict(r, run=r["run"] + 10) for r in make_records()]
        trace = records_chrome_trace(make_records() + shifted)
        pids = {e["pid"] for e in trace["traceEvents"]}
        assert {1, 11} <= pids


class TestSnapshotMerge:
    def snap(self, counter=0.0, gauge=0.0, hist=()):
        registry = MetricsRegistry()
        if counter:
            registry.counter("c").inc(counter, kind="x")
        if gauge:
            registry.gauge("g").set(gauge)
        for value in hist:
            registry.histogram("h").observe(value)
        return registry.snapshot()

    def test_counters_add(self):
        merged = merge_snapshots([self.snap(counter=2), self.snap(counter=3)])
        assert merged["c"]["series"]['{kind="x"}'] == 5.0

    def test_gauges_keep_peak(self):
        merged = merge_snapshots([self.snap(gauge=2.0), self.snap(gauge=7.0),
                                  self.snap(gauge=1.0)])
        assert merged["g"]["series"]["{}"] == 7.0

    def test_histograms_combine(self):
        merged = merge_snapshots([
            self.snap(hist=(1e-4, 2e-3)), self.snap(hist=(5e-2,)),
        ])
        series = merged["h"]["series"]["{}"]
        assert series["count"] == 3
        assert series["sum"] == pytest.approx(1e-4 + 2e-3 + 5e-2)
        assert series["min"] == pytest.approx(1e-4)
        assert series["max"] == pytest.approx(5e-2)
        assert sum(series["buckets"].values()) == 3

    def test_merge_is_identity_for_one(self):
        snapshot = self.snap(counter=1, gauge=2, hist=(1e-3,))
        assert merge_snapshots([snapshot]) == snapshot

    def test_kind_clash_rejected(self):
        a = {"m": {"kind": "counter", "series": {"{}": 1.0}}}
        b = {"m": {"kind": "gauge", "series": {"{}": 1.0}}}
        with pytest.raises(ConfigurationError):
            merge_snapshots([a, b])

    def test_render_snapshot(self):
        merged = merge_snapshots([self.snap(counter=2, hist=(1e-3,))])
        text = render_snapshot(merged)
        assert "# TYPE c counter" in text
        assert 'c{kind="x"} 2' in text
        assert "h_count 1" in text

    def test_empty(self):
        assert merge_snapshots([]) == {}
        assert render_snapshot({}) == ""

"""pcapng writer/parser round-trips and byte synthesis."""

import struct

import pytest

from repro.errors import ConfigurationError
from repro.obs.pcap import (
    BYTE_ORDER_MAGIC,
    LINKTYPE_ETHERNET,
    SHB_TYPE,
    read_pcapng,
    synthesize,
    write_pcapng,
)
from repro.net.capture import CapturedPacket, CapturePoint


def packet(ts=1e-6, fid=1, proto="udp", payload=64,
           src="0a000001", dst="0a000002", sport=33001, dport=4789):
    return CapturedPacket(
        ts=ts, frame_id=fid,
        src_mac=0x02AA00000001, dst_mac=0x02AA00000002,
        src_ip=int(src, 16), dst_ip=int(dst, 16),
        src_port=sport, dst_port=dport,
        proto=proto, payload_bytes=payload,
    )


def ip_checksum(header: bytes) -> int:
    total = 0
    for i in range(0, len(header), 2):
        total += (header[i] << 8) | header[i + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


class TestSynthesize:
    def test_ethernet_header(self):
        data = synthesize(packet())
        assert data[12:14] == b"\x08\x00"  # EtherType IPv4
        assert data[0:6] == (0x02AA00000002).to_bytes(6, "big")
        assert data[6:12] == (0x02AA00000001).to_bytes(6, "big")

    def test_ipv4_checksum_validates(self):
        data = synthesize(packet())
        ip_header = data[14:34]
        # Recomputing over the checksummed header must give zero.
        assert ip_checksum(ip_header) == 0

    def test_udp_lengths_consistent(self):
        data = synthesize(packet(proto="udp", payload=100))
        total_len = struct.unpack_from(">H", data, 16)[0]
        assert total_len == 20 + 8 + 100
        assert len(data) == 14 + total_len
        udp_len = struct.unpack_from(">H", data, 14 + 20 + 4)[0]
        assert udp_len == 8 + 100

    def test_tcp_segment_shape(self):
        data = synthesize(packet(proto="tcp", payload=10))
        assert data[23] == 6  # IP protocol
        assert len(data) == 14 + 20 + 20 + 10
        offset_flags = data[14 + 20 + 12]
        assert offset_flags >> 4 == 5  # 20-byte header, no options

    def test_missing_macs_get_placeholders(self):
        pkt = packet()._replace(src_mac=None, dst_mac=None)
        data = synthesize(pkt)
        assert data[0:6] == b"\xff" * 6  # broadcast destination


class TestRoundTrip:
    def test_writer_output_parses_back(self, tmp_path):
        a = CapturePoint("virbr0", "bridge")
        b = CapturePoint("tap-vm1", "tap")
        a.packets.append(packet(ts=1e-6, fid=1))
        a.packets.append(packet(ts=3e-6, fid=2))
        b.packets.append(packet(ts=2e-6, fid=1, proto="tcp"))
        path = write_pcapng([a, b], tmp_path / "x.pcapng")

        parsed = read_pcapng(path)
        assert [i.name for i in parsed.interfaces] == ["virbr0", "tap-vm1"]
        assert all(i.linktype == LINKTYPE_ETHERNET
                   for i in parsed.interfaces)
        assert all(i.tsresol == 9 for i in parsed.interfaces)
        assert len(parsed.packets) == 3
        stamps = [p.ts for p in parsed.packets]
        assert stamps == sorted(stamps)  # merged in time order
        assert len(parsed.packets_on("virbr0")) == 2
        assert len(parsed.packets_on("tap-vm1")) == 1

    def test_magic_bytes_and_section_header(self, tmp_path):
        path = write_pcapng([CapturePoint("lo", "loopback")],
                            tmp_path / "x.pcapng")
        raw = path.read_bytes()
        assert struct.unpack_from("<I", raw, 0)[0] == SHB_TYPE
        assert struct.unpack_from("<I", raw, 8)[0] == BYTE_ORDER_MAGIC

    def test_empty_point_still_gets_interface_block(self, tmp_path):
        path = write_pcapng([CapturePoint("idle0", "nic")],
                            tmp_path / "x.pcapng")
        parsed = read_pcapng(path)
        assert parsed.interface("idle0").name == "idle0"
        assert parsed.packets == ()

    def test_sub_microsecond_timestamps_survive(self, tmp_path):
        point = CapturePoint("dev0")
        point.packets.append(packet(ts=3e-9, fid=1))
        point.packets.append(packet(ts=4e-9, fid=2))
        parsed = read_pcapng(write_pcapng([point], tmp_path / "x.pcapng"))
        assert [p.ts for p in parsed.packets] == [3e-9, 4e-9]

    def test_snaplen_caps_captured_length(self, tmp_path):
        point = CapturePoint("dev0")
        point.packets.append(packet(payload=1000))
        parsed = read_pcapng(
            write_pcapng([point], tmp_path / "x.pcapng", snaplen=64)
        )
        pkt = parsed.packets[0]
        assert pkt.captured_len == 64
        assert pkt.original_len == 14 + 20 + 8 + 1000
        assert len(pkt.data) == 64

    def test_unknown_interface_lookup_rejected(self, tmp_path):
        parsed = read_pcapng(
            write_pcapng([CapturePoint("a")], tmp_path / "x.pcapng")
        )
        with pytest.raises(ConfigurationError):
            parsed.interface("nope")


class TestCorruption:
    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.pcapng"
        path.write_bytes(b"\x00" * 64)
        with pytest.raises(ConfigurationError, match="magic"):
            read_pcapng(path)

    def test_big_endian_rejected(self, tmp_path):
        path = tmp_path / "be.pcapng"
        body = struct.pack(">IHHq", BYTE_ORDER_MAGIC, 1, 0, -1)
        block = struct.pack("<II", SHB_TYPE, 12 + len(body)) + body \
            + struct.pack("<I", 12 + len(body))
        path.write_bytes(block)
        with pytest.raises(ConfigurationError, match="byte order"):
            read_pcapng(path)

    def test_truncated_block_rejected(self, tmp_path):
        point = CapturePoint("dev0")
        point.packets.append(packet())
        path = write_pcapng([point], tmp_path / "x.pcapng")
        raw = path.read_bytes()
        path.write_bytes(raw[:-6])  # chop the last block's trailer
        with pytest.raises(ConfigurationError):
            read_pcapng(path)

    def test_mismatched_trailer_rejected(self, tmp_path):
        path = write_pcapng([CapturePoint("a")], tmp_path / "x.pcapng")
        raw = bytearray(path.read_bytes())
        raw[-4:] = struct.pack("<I", 9999)
        path.write_bytes(bytes(raw))
        with pytest.raises(ConfigurationError, match="mismatch"):
            read_pcapng(path)

"""Metrics registry: counters, gauges, histograms, rendering."""

import pytest

from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram


class TestCounter:
    def test_inc_and_value(self):
        reg = MetricsRegistry()
        c = reg.counter("requests")
        c.inc()
        c.inc(2.5)
        assert c.value() == pytest.approx(3.5)

    def test_labels_make_separate_series(self):
        c = MetricsRegistry().counter("hops")
        c.inc(vm="vm0")
        c.inc(vm="vm0")
        c.inc(vm="vm1")
        assert c.value(vm="vm0") == 2
        assert c.value(vm="vm1") == 1
        assert c.value(vm="vm9") == 0

    def test_label_order_is_irrelevant(self):
        c = MetricsRegistry().counter("x")
        c.inc(a="1", b="2")
        assert c.value(b="2", a="1") == 1

    def test_negative_increment_rejected(self):
        c = MetricsRegistry().counter("x")
        with pytest.raises(ConfigurationError):
            c.inc(-1)


class TestGauge:
    def test_set_add_value(self):
        g = MetricsRegistry().gauge("depth")
        g.set(4, cpu="0")
        g.add(-1, cpu="0")
        assert g.value(cpu="0") == 3

    def test_peak_tracks_maximum(self):
        g = MetricsRegistry().gauge("depth")
        g.set(2)
        g.set(7)
        g.set(1)
        assert g.value() == 1
        assert g.peak() == 7

    def test_unset_series_reads_zero(self):
        g = MetricsRegistry().gauge("depth")
        assert g.value(cpu="9") == 0.0
        assert g.peak(cpu="9") == 0.0


class TestHistogram:
    def test_observe_counts_and_stats(self):
        h = Histogram("lat", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.05, 0.5, 2.0):
            h.observe(value)
        assert h.count() == 5
        assert h.total() == pytest.approx(2.605)
        assert h.mean() == pytest.approx(2.605 / 5)
        series = h.series()[()]
        assert series["buckets"] == {0.01: 1, 0.1: 2, 1.0: 1}
        assert series["overflow"] == 1
        assert series["min"] == pytest.approx(0.005)
        assert series["max"] == pytest.approx(2.0)

    def test_quantile_answers_bucket_upper_bound(self):
        h = Histogram("lat", buckets=(0.01, 0.1, 1.0))
        for _ in range(99):
            h.observe(0.05)
        h.observe(0.5)
        assert h.quantile(0.5) == 0.1
        assert h.quantile(0.99) == 0.1
        assert h.quantile(1.0) == 1.0

    def test_quantile_of_overflow_is_observed_max(self):
        h = Histogram("lat", buckets=(0.01,))
        h.observe(5.0)
        assert h.quantile(1.0) == 5.0

    def test_quantile_range_checked(self):
        h = Histogram("lat")
        with pytest.raises(ConfigurationError):
            h.quantile(1.5)

    def test_buckets_must_increase(self):
        with pytest.raises(ConfigurationError):
            Histogram("bad", buckets=(0.1, 0.1))
        with pytest.raises(ConfigurationError):
            Histogram("bad", buckets=())

    def test_default_buckets(self):
        h = Histogram("lat")
        assert h.buckets == DEFAULT_BUCKETS

    def test_empty_series_reads_zero(self):
        h = Histogram("lat")
        assert h.count() == 0
        assert h.mean() == 0.0
        assert h.quantile(0.99) == 0.0


class TestRegistry:
    def test_get_or_create_returns_same_metric(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_kind_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigurationError):
            reg.gauge("x")
        with pytest.raises(ConfigurationError):
            reg.histogram("x")

    def test_names_and_get(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.gauge("a")
        assert reg.names() == ("a", "b")
        assert reg.get("a").kind == "gauge"
        with pytest.raises(ConfigurationError):
            reg.get("zzz")

    def test_snapshot_is_plain_data(self):
        import json

        reg = MetricsRegistry()
        reg.counter("c").inc(vm="vm0")
        reg.gauge("g").set(3)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap["c"]["kind"] == "counter"
        assert snap["c"]["series"] == {'{vm="vm0"}': 1.0}
        assert snap["g"]["series"] == {"{}": 3.0}
        assert snap["h"]["series"]["{}"]["count"] == 1
        json.dumps(snap)  # must be JSON-serialisable

    def test_render_text(self):
        reg = MetricsRegistry()
        reg.counter("c", help="things").inc(2, vm="vm0")
        reg.histogram("h", buckets=(0.1, 1.0)).observe(0.05, kind="nic")
        text = reg.render_text()
        assert "# TYPE c counter" in text
        assert "# HELP c things" in text
        assert 'c{vm="vm0"} 2' in text
        assert 'h_count{kind="nic"} 1' in text
        # Buckets are cumulative in le order, closed by +Inf == count.
        assert 'h_bucket{kind="nic",le="0.1"} 1' in text
        assert 'h_bucket{kind="nic",le="1"} 1' in text
        assert 'h_bucket{kind="nic",le="+Inf"} 1' in text

    def test_render_text_buckets_accumulate(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(value)
        text = reg.render_text()
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1"} 3' in text
        assert 'lat_bucket{le="10"} 4' in text
        assert 'lat_bucket{le="+Inf"} 5' in text
        assert "lat_count 5" in text

    def test_render_text_escapes_hostile_labels(self):
        """A label value with quotes, backslashes and newlines must
        round-trip the renderer intact (the /metrics escaping rule)."""
        from repro.obs.metrics import (
            _escape_label_value,
            _unescape_label_value,
        )

        hostile = 'say "hi"\\\n twice'
        reg = MetricsRegistry()
        reg.counter("evil").inc(3, reason=hostile)
        text = reg.render_text()
        line = next(l for l in text.splitlines()
                    if l.startswith("evil{"))
        assert "\n" not in line  # the newline was escaped, not emitted
        rendered = line[len('evil{reason="'):line.rindex('"')]
        assert _unescape_label_value(rendered) == hostile
        assert _escape_label_value(hostile) == rendered

    def test_render_text_label_order_is_sorted_and_stable(self):
        reg = MetricsRegistry()
        reg.counter("s").inc(1, zebra="z", alpha="a")
        reg.counter("s").inc(1, alpha="a", zebra="z")
        assert 's{alpha="a",zebra="z"} 2' in reg.render_text()

    def test_render_text_empty(self):
        assert MetricsRegistry().render_text() == ""

"""Distributed trace context, span store, and critical-path analysis."""

import pytest

from repro.obs.distributed import (
    MAX_SPANS_PER_TRACE,
    PHASES,
    SpanRecord,
    TraceContext,
    TraceStore,
    connected,
    critical_path,
    new_span_id,
    new_trace_id,
    sanitize_trace_id,
    sim_records_to_spans,
)


def span(trace="tr1", sid="s1", name="x", start=0.0, end=1.0,
         parent=None, kind="service", **tags) -> SpanRecord:
    return SpanRecord(
        trace_id=trace, span_id=sid, name=name,
        start_s=start, end_s=end, parent_id=parent, kind=kind, tags=tags,
    )


class TestIds:
    def test_ids_are_fresh_and_hex(self):
        a, b = new_trace_id(), new_trace_id()
        assert a != b
        assert len(a) == 16 and int(a, 16) >= 0
        assert len(new_span_id()) == 8

    @pytest.mark.parametrize("raw", [
        "abcd", "a-b_c-9", "A" * 64, "0123456789abcdef",
    ])
    def test_sanitize_accepts_reasonable_ids(self, raw):
        assert sanitize_trace_id(raw) == raw

    @pytest.mark.parametrize("raw", [
        None, "", "abc", "A" * 65, "has space", 'quote"id',
        "new\nline", "semi;colon", "curly{brace}",
    ])
    def test_sanitize_rejects_hostile_ids(self, raw):
        assert sanitize_trace_id(raw) is None


class TestTraceContext:
    def test_root_mints_an_id_and_sorts_baggage(self):
        ctx = TraceContext.root(z="1", a="2")
        assert ctx.parent_span_id is None
        assert ctx.baggage == (("a", "2"), ("z", "1"))
        assert ctx.bag() == {"a": "2", "z": "1"}

    def test_child_keeps_id_and_baggage(self):
        ctx = TraceContext.root("tracetrace", hop="first")
        child = ctx.child("span0001")
        assert child.trace_id == "tracetrace"
        assert child.parent_span_id == "span0001"
        assert child.bag() == {"hop": "first"}

    def test_dict_roundtrip(self):
        ctx = TraceContext("tid0", "pid0", (("k", "v"),))
        assert TraceContext.from_dict(ctx.to_dict()) == ctx
        bare = TraceContext.root("bare")
        assert TraceContext.from_dict(bare.to_dict()) == bare
        assert "parent_span_id" not in bare.to_dict()


class TestSpanRecord:
    def test_doc_roundtrip(self):
        s = span(parent="p1", kind="sim", cycles=7)
        assert SpanRecord.from_doc(s.to_doc()) == s

    def test_duration_never_negative(self):
        assert span(start=2.0, end=1.0).duration_s == 0.0


class TestTraceStore:
    def test_evicts_whole_oldest_trace(self):
        store = TraceStore(keep=2)
        for tid in ("t001", "t002", "t003"):
            store.add(span(trace=tid, sid=f"{tid}-a"))
            store.add(span(trace=tid, sid=f"{tid}-b"))
        assert store.trace_ids() == ("t002", "t003")
        assert store.spans("t001") == []
        assert len(store.spans("t003")) == 2

    def test_extending_refreshes_age(self):
        store = TraceStore(keep=2)
        store.add(span(trace="old1", sid="a"))
        store.add(span(trace="old2", sid="b"))
        store.add(span(trace="old1", sid="c"))  # touch: old1 is now newest
        store.add(span(trace="new3", sid="d"))
        assert "old1" in store.trace_ids()
        assert "old2" not in store.trace_ids()

    def test_per_trace_span_cap_counts_drops(self):
        store = TraceStore(keep=4, max_spans=16)
        for i in range(20):
            store.add(span(trace="big1", sid=f"s{i}"))
        assert len(store.spans("big1")) == 16
        assert store.dropped("big1") == 4
        assert store.dropped("elsewhere") == 0

    def test_default_cap_is_the_module_constant(self):
        assert TraceStore().max_spans == MAX_SPANS_PER_TRACE


class TestConnected:
    def test_single_tree_is_connected(self):
        spans = [
            span(sid="root"),
            span(sid="kid1", parent="root"),
            span(sid="kid2", parent="kid1"),
        ]
        assert connected(spans)

    def test_two_roots_or_dangling_parent_is_not(self):
        assert not connected([span(sid="a"), span(sid="b")])
        assert not connected([span(sid="a"), span(sid="b", parent="ghost")])
        assert not connected([])


class TestCriticalPath:
    def test_components_tile_the_job_exactly(self):
        spans = [
            span(sid="parse", name="http.parse", start=0.0, end=0.1),
            span(sid="job", name="job", start=0.1, end=1.1, parent="parse"),
            span(sid="p1", name="cache.probe", start=0.1, end=0.2,
                 parent="job"),
            span(sid="p2", name="admission", start=0.2, end=0.3,
                 parent="job"),
            span(sid="p3", name="queue.wait", start=0.3, end=0.6,
                 parent="job"),
            span(sid="p4", name="worker", start=0.6, end=1.0, parent="job"),
            span(sid="p5", name="publish", start=1.0, end=1.05,
                 parent="job"),
        ]
        path = critical_path(spans)
        assert path["e2e_s"] == pytest.approx(1.0)
        # By construction: attributed phases + "other" == e2e, exactly.
        assert sum(path["components"].values()) == pytest.approx(1.0)
        assert path["components"]["queue_wait"] == pytest.approx(0.3)
        assert path["components"]["other"] == pytest.approx(0.05)
        assert path["coverage"] == pytest.approx(0.95)
        assert path["span_count"] == len(spans)

    def test_every_phase_name_is_attributable(self):
        spans = [span(sid="job", name="job", start=0.0, end=2.0)]
        spans.extend(
            span(sid=f"ph{i}", name=name, parent="job",
                 start=0.1 * i, end=0.1 * i + 0.1)
            for i, name in enumerate(PHASES)
        )
        path = critical_path(spans)
        for name in PHASES:
            assert path["components"][name.replace(".", "_")] == (
                pytest.approx(0.1))

    def test_sim_spans_are_summarized_not_attributed(self):
        spans = [
            span(sid="job", name="job", start=0.0, end=1.0),
            span(sid="w", name="worker", parent="job", start=0.0, end=1.0),
            span(sid="w.r0s1", name="engine", parent="w", kind="sim",
                 start=0.0, end=0.5, cycles=100),
        ]
        path = critical_path(spans)
        assert path["sim"] == {"spans": 1, "sim_s": 0.5, "cycles": 100.0}
        assert "engine" not in path["components"]

    def test_empty_trace_degrades_gracefully(self):
        path = critical_path([])
        assert path["e2e_s"] == 0.0 and path["components"] == {}


class TestSimBridge:
    def test_namespacing_and_parent_links(self):
        records = [
            {"sid": 1, "run": 0, "name": "root", "ts": 0.0, "dur": 2e-6,
             "cat": "engine"},
            {"sid": 2, "run": 0, "parent": 1, "name": "leaf", "ts": 1e-6,
             "dur": 1e-6, "cat": "engine",
             "attrs": {"cycles": 42, "domain": "cpu0"}},
            {"name": "an-event", "ts": 0.0},  # no sid: skipped
        ]
        spans, truncated = sim_records_to_spans(
            records, trace_id="tr1", parent_span_id="wspan", worker="pid-9"
        )
        assert not truncated
        assert [s.span_id for s in spans] == ["wspan.r0s1", "wspan.r0s2"]
        assert spans[0].parent_id == "wspan"  # sim root -> worker span
        assert spans[1].parent_id == "wspan.r0s1"
        assert spans[1].tags["cycles"] == 42
        assert all(s.kind == "sim" and s.worker == "pid-9" for s in spans)

    def test_two_attempts_cannot_collide(self):
        record = [{"sid": 1, "run": 0, "name": "r", "ts": 0.0, "dur": 0.0}]
        first, _ = sim_records_to_spans(
            record, trace_id="tr1", parent_span_id="attempt1", worker="w")
        second, _ = sim_records_to_spans(
            record, trace_id="tr1", parent_span_id="attempt2", worker="w")
        assert first[0].span_id != second[0].span_id

    def test_limit_truncates(self):
        records = [{"sid": i, "name": "s", "ts": 0.0, "dur": 0.0}
                   for i in range(10)]
        spans, truncated = sim_records_to_spans(
            records, trace_id="t", parent_span_id="w", worker="w", limit=4)
        assert truncated and len(spans) == 4

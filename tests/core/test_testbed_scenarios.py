"""Tests for the Testbed facade and the seven scenario builders."""

import pytest

from repro.core import DeploymentMode, Testbed, build_scenario
from repro.core.testbed import default_testbed
from repro.errors import ConfigurationError


@pytest.fixture
def tb():
    return default_testbed(seed=1, vms=2)


class TestTestbed:
    def test_default_testbed_shape(self, tb):
        assert tb.host.cpu.cores == 12
        assert tb.vm("vm0").vcpus == 5
        assert tb.client_cpu.cores == 2

    def test_domains_registered(self, tb):
        for domain in ("host", "client", "vm:vm0", "vm:vm1"):
            tb.check_domain(domain)

    def test_client_address_on_bridge_subnet(self, tb):
        assert tb.client_address in tb.host.bridge_network("virbr0")

    def test_zero_vms_rejected(self):
        with pytest.raises(ConfigurationError):
            default_testbed(vms=0)

    def test_breakdowns_cover_entities(self, tb):
        tb.reset_accounting()
        bd = tb.breakdowns()
        assert set(bd) == {"host", "client", "vm:vm0", "vm:vm1"}


EXTERNAL = [DeploymentMode.NAT, DeploymentMode.BRFUSION, DeploymentMode.NOCONT]
INTRA = [
    DeploymentMode.SAMENODE,
    DeploymentMode.HOSTLO,
    DeploymentMode.OVERLAY,
    DeploymentMode.NAT_CROSS,
]


class TestScenarioBuilders:
    @pytest.mark.parametrize("mode", EXTERNAL + INTRA)
    def test_builds_and_resolves_both_protocols(self, tb, mode):
        scenario = build_scenario(tb, mode)
        for proto in ("tcp", "udp"):
            forward, reverse = scenario.paths(proto)
            assert forward.stages and reverse.stages

    @pytest.mark.parametrize("mode", EXTERNAL)
    def test_external_scenarios_start_at_client(self, tb, mode):
        scenario = build_scenario(tb, mode)
        assert scenario.client_domain == "client"
        assert scenario.server_domain.startswith("vm:")

    def test_nat_vs_brfusion_vs_nocont_path_lengths(self):
        # Fresh testbed per configuration, as in the paper's methodology.
        lengths = {}
        for mode in EXTERNAL:
            scenario = build_scenario(default_testbed(seed=1, vms=2), mode)
            lengths[mode] = len(scenario.paths()[0].stages)
        assert (
            lengths[DeploymentMode.BRFUSION]
            == lengths[DeploymentMode.NOCONT]
            < lengths[DeploymentMode.NAT]
        )

    def test_intra_pod_orderings(self):
        lengths = {}
        for mode in INTRA:
            scenario = build_scenario(default_testbed(seed=1, vms=2), mode)
            lengths[mode] = len(scenario.paths()[0].stages)
        assert lengths[DeploymentMode.SAMENODE] < lengths[DeploymentMode.HOSTLO]
        assert lengths[DeploymentMode.HOSTLO] < lengths[DeploymentMode.NAT_CROSS]
        assert lengths[DeploymentMode.HOSTLO] < lengths[DeploymentMode.OVERLAY]

    def test_hostlo_scenario_is_cross_vm(self, tb):
        scenario = build_scenario(tb, DeploymentMode.HOSTLO)
        assert scenario.src_ns.domain != scenario.dst_ns.domain
        assert "hostlo_reflect" in scenario.paths()[0].stage_names()

    def test_samenode_scenario_is_loopback(self, tb):
        scenario = build_scenario(tb, DeploymentMode.SAMENODE)
        assert "loopback_xmit" in scenario.paths()[0].stage_names()
        assert scenario.src_ns is scenario.dst_ns

    def test_nat_cross_traverses_two_nat_layers(self, tb):
        scenario = build_scenario(tb, DeploymentMode.NAT_CROSS)
        forward, reverse = scenario.paths()
        assert forward.count("netfilter_nat") >= 2  # masquerade + DNAT
        assert reverse.count("netfilter_nat") >= 2

    def test_split_scenarios_need_two_vms(self):
        tb = default_testbed(seed=1, vms=1)
        with pytest.raises(ConfigurationError):
            build_scenario(tb, DeploymentMode.HOSTLO)

    def test_multiple_scenarios_coexist_on_distinct_ports(self, tb):
        first = build_scenario(tb, DeploymentMode.NAT, port=12865)
        second = build_scenario(tb, DeploymentMode.NAT, port=12866)
        assert first.name != second.name
        assert first.dst_port != second.dst_port

    def test_port_collision_is_detected(self, tb):
        from repro.errors import TopologyError

        build_scenario(tb, DeploymentMode.NAT, port=12865)
        with pytest.raises(TopologyError):
            build_scenario(tb, DeploymentMode.NAT, port=12865)

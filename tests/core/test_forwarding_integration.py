"""End-to-end cross-check: frames walk the orchestrator-built topologies
and land exactly where the resolver says packets go."""

import pytest

from repro.core import DeploymentMode, build_scenario
from repro.core.testbed import default_testbed
from repro.net.forwarding import ForwardingEngine

MODES = [
    DeploymentMode.NAT,
    DeploymentMode.BRFUSION,
    DeploymentMode.NOCONT,
    DeploymentMode.SAMENODE,
    DeploymentMode.HOSTLO,
    DeploymentMode.OVERLAY,
    DeploymentMode.NAT_CROSS,
]


@pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
def test_frames_land_in_the_scenario_destination(mode):
    tb = default_testbed(seed=17, vms=2)
    scenario = build_scenario(tb, mode)
    engine = ForwardingEngine()
    delivery = engine.send(
        scenario.src_ns, scenario.dst_addr, scenario.dst_port
    )
    assert delivery.delivered, delivery.hops
    assert delivery.namespace == scenario.dst_ns.name


@pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
def test_reverse_frames_return_to_source(mode):
    tb = default_testbed(seed=17, vms=2)
    scenario = build_scenario(tb, mode)
    engine = ForwardingEngine()
    delivery = engine.send(
        scenario.dst_ns, scenario.src_addr, scenario.src_port
    )
    assert delivery.delivered, delivery.hops
    assert delivery.namespace == scenario.src_ns.name


def test_hostlo_deployment_frames_reflect():
    tb = default_testbed(seed=17, vms=2)
    scenario = build_scenario(tb, DeploymentMode.HOSTLO)
    engine = ForwardingEngine()
    delivery = engine.send(
        scenario.src_ns, scenario.dst_addr, scenario.dst_port
    )
    assert delivery.reflected_copies == 2


def test_brfusion_frames_never_touch_guest_nat():
    tb = default_testbed(seed=17, vms=2)
    scenario = build_scenario(tb, DeploymentMode.BRFUSION)
    engine = ForwardingEngine()
    delivery = engine.send(
        scenario.src_ns, scenario.dst_addr, scenario.dst_port
    )
    assert not delivery.visited("dnat:")
    assert not delivery.visited("docker0")

"""Fault injection: the system fails loudly and cleans up correctly."""

import pytest

from repro.core import DeploymentMode, build_scenario
from repro.core.testbed import default_testbed
from repro.errors import HotplugError, SchedulingError, TopologyError
from repro.net import resolve_path
from repro.net.forwarding import ForwardingEngine


class TestDeviceFailures:
    def test_pod_nic_link_down_breaks_path(self):
        tb = default_testbed(seed=23, vms=1)
        scenario = build_scenario(tb, DeploymentMode.BRFUSION)
        dep = tb.orchestrator.deployments[scenario.name]
        dep.plugin_state["pod_nic"].up = False
        with pytest.raises(TopologyError, match="down"):
            resolve_path(scenario.dst_ns, scenario.src_addr, 40000)

    def test_hot_unplug_under_a_live_deployment(self):
        tb = default_testbed(seed=23, vms=1)
        scenario = build_scenario(tb, DeploymentMode.BRFUSION)
        dep = tb.orchestrator.deployments[scenario.name]
        nic = dep.plugin_state["pod_nic"]
        vm = tb.vm("vm0")
        tb.vmm.remove_nic(vm, nic.mac)
        # The pod lost its only NIC: resolution must now fail.
        with pytest.raises(TopologyError):
            resolve_path(scenario.src_ns, scenario.dst_addr,
                         scenario.dst_port)

    def test_remove_hostlo_breaks_intra_pod_path(self):
        tb = default_testbed(seed=23, vms=2)
        scenario = build_scenario(tb, DeploymentMode.HOSTLO)
        dep = tb.orchestrator.deployments[scenario.name]
        tb.vmm.remove_hostlo(dep.plugin_state["hostlo"].name)
        with pytest.raises(TopologyError):
            resolve_path(scenario.src_ns, scenario.dst_addr,
                         scenario.dst_port)

    def test_frames_observe_link_down_not_crash(self):
        tb = default_testbed(seed=23, vms=1)
        scenario = build_scenario(tb, DeploymentMode.NAT)
        tb.vm("vm0").primary_nic.up = False
        # Reverse direction egresses through the downed NIC.
        delivery = ForwardingEngine().send(
            scenario.dst_ns, scenario.src_addr, 40000
        )
        assert not delivery.delivered
        assert delivery.visited("drop:link-down")


class TestVmFailures:
    def test_destroy_vm_rejects_new_hotplug(self):
        tb = default_testbed(seed=23, vms=2)
        vm = tb.vm("vm0")
        tb.vmm.destroy_vm("vm0")
        with pytest.raises(HotplugError):
            next(tb.vmm.hotplug_nic(vm))

    def test_destroyed_vm_disconnects_qmp(self):
        tb = default_testbed(seed=23, vms=2)
        qmp = tb.vmm.qmp["vm0"]
        tb.vmm.destroy_vm("vm0")
        with pytest.raises(HotplugError):
            next(qmp.execute("query"))

    def test_destroy_vm_detaches_taps_from_bridge(self):
        tb = default_testbed(seed=23, vms=2)
        vm = tb.vm("vm0")
        taps = [nic.backend for nic in vm.virtio_nics()]
        tb.vmm.destroy_vm("vm0")
        for tap in taps:
            assert not tb.host.default_bridge.has_port(tap)


class TestOrchestratorFailures:
    def test_remove_pod_twice_rejected(self):
        tb = default_testbed(seed=23, vms=1)
        scenario = build_scenario(tb, DeploymentMode.NAT)
        tb.orchestrator.remove_pod(scenario.name)
        with pytest.raises(SchedulingError):
            tb.orchestrator.remove_pod(scenario.name)

    def test_redeploy_after_removal_works(self):
        tb = default_testbed(seed=23, vms=1)
        scenario = build_scenario(tb, DeploymentMode.BRFUSION)
        tb.orchestrator.remove_pod(scenario.name)
        # Same port is free again: a new pod can publish it.
        second = build_scenario(tb, DeploymentMode.BRFUSION)
        assert second.name != scenario.name
        path = resolve_path(second.src_ns, second.dst_addr, second.dst_port)
        assert path.stages[-1].domain == "vm:vm0"

    def test_hostlo_pod_removal_frees_the_device_name(self):
        tb = default_testbed(seed=23, vms=2)
        scenario = build_scenario(tb, DeploymentMode.HOSTLO)
        dep = tb.orchestrator.deployments[scenario.name]
        name = dep.plugin_state["hostlo"].name
        tb.orchestrator.remove_pod(scenario.name)
        # Device gone from the host namespace.
        assert name not in tb.host.ns.devices

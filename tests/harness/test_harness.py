"""Tests for the harness plumbing: config, results, registry, CLI."""

import pytest

from repro.errors import ConfigurationError
from repro.harness import EXPERIMENTS, ExperimentConfig, run_experiment
from repro.harness.results import ExperimentResult


class TestConfig:
    def test_presets(self):
        quick = ExperimentConfig.preset("quick")
        default = ExperimentConfig.preset("default")
        full = ExperimentConfig.preset("full")
        assert quick.rr_transactions < default.rr_transactions
        assert full.rr_transactions > default.rr_transactions
        assert len(full.message_sizes) >= len(default.message_sizes)

    @pytest.mark.parametrize("name", ["warp", "", "QUICK", "quick ", None])
    def test_unknown_preset(self, name):
        with pytest.raises(ConfigurationError):
            ExperimentConfig.preset(name)

    @pytest.mark.parametrize("kwargs", [
        {"stream_duration_s": 0},
        {"stream_duration_s": -0.01},
        {"macro_duration_s": 0},
        {"macro_duration_s": -1.0},
        {"rr_transactions": 1},
        {"rr_transactions": 0},
        {"boot_runs": 1},
        {"message_sizes": ()},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(**kwargs)

    def test_validation_error_messages_name_the_problem(self):
        with pytest.raises(ConfigurationError, match="durations"):
            ExperimentConfig(stream_duration_s=0)
        with pytest.raises(ConfigurationError, match="two samples"):
            ExperimentConfig(boot_runs=1)
        with pytest.raises(ConfigurationError, match="message size"):
            ExperimentConfig(message_sizes=())

    def test_fingerprint_tracks_every_field(self):
        import dataclasses

        base = ExperimentConfig()
        assert base.fingerprint() == ExperimentConfig().fingerprint()
        for field in dataclasses.fields(ExperimentConfig):
            if field.name == "seed":
                changed = dataclasses.replace(base, seed=base.seed + 1)
            elif field.name == "fault_plan":
                changed = dataclasses.replace(base, fault_plan="plan.json")
            elif field.name == "message_sizes":
                changed = dataclasses.replace(base, message_sizes=(64,))
            elif field.name == "loss_rates":
                changed = dataclasses.replace(base, loss_rates=(0.33,))
            elif field.name == "fabric_hosts_per_edge":
                # Doubling would break the <= k/2 bound; shrink instead.
                changed = dataclasses.replace(base,
                                              fabric_hosts_per_edge=1)
            elif field.name == "netstack_backend":
                # Doubling "all" is not a registered backend name.
                changed = dataclasses.replace(base,
                                              netstack_backend="hostlo")
            elif field.name == "service_executor":
                # Doubling "thread" is not a registered executor.
                changed = dataclasses.replace(base,
                                              service_executor="spawn")
            else:
                value = getattr(base, field.name)
                if isinstance(value, bool):
                    changed = dataclasses.replace(
                        base, **{field.name: not value}
                    )
                else:
                    changed = dataclasses.replace(
                        base, **{field.name: type(value)(value * 2)}
                    )
            assert changed.fingerprint() != base.fingerprint(), field.name


class TestResults:
    def make(self):
        return ExperimentResult(
            experiment="x",
            title="T",
            rows=(
                {"mode": "a", "v": 1.0},
                {"mode": "b", "v": 2.0},
            ),
            notes=("hello",),
        )

    def test_select_and_value(self):
        result = self.make()
        assert result.select(mode="a") == [{"mode": "a", "v": 1.0}]
        assert result.value("v", mode="b") == 2.0

    def test_value_requires_unique(self):
        result = self.make()
        with pytest.raises(ConfigurationError):
            result.value("v")
        with pytest.raises(ConfigurationError):
            result.value("v", mode="c")

    def test_render_contains_all(self):
        text = self.make().render()
        assert "T" in text and "mode" in text and "hello" in text

    def test_empty_rows_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentResult(experiment="x", title="T", rows=())

    def test_columns_union(self):
        result = ExperimentResult(
            experiment="x", title="T",
            rows=({"a": 1}, {"b": 2}),
        )
        assert result.columns() == ["a", "b"]


class TestRegistry:
    def test_all_figures_registered(self):
        expected = {
            "fig02", "fig04", "fig05", "fig06", "fig07", "fig08",
            "fig09", "fig10", "fig11_12", "fig13", "fig14", "fig15",
            "table01", "table02",
            "ablation_hostlo_thread", "ablation_netfilter_cost",
            "ablation_no_batching", "ablation_rule_bloat",
            "ablation_scheduler_policy",
            "online_cost", "analytic_check",
            "chaos", "reliability", "campaign", "fabric", "netstack",
            "service",
        }
        assert set(EXPERIMENTS) == expected

    def test_describe_every_experiment(self):
        from repro.harness.registry import describe

        for experiment in EXPERIMENTS:
            line = describe(experiment)
            assert line and "\n" not in line, experiment

    def test_describe_unknown(self):
        from repro.harness.registry import describe

        with pytest.raises(ConfigurationError):
            describe("fig99")

    def test_unknown_experiment(self):
        with pytest.raises(ConfigurationError):
            run_experiment("fig99")

    def test_tables_run_instantly(self):
        t1 = run_experiment("table01")
        t2 = run_experiment("table02")
        assert len(t1.rows) == 3
        assert len(t2.rows) == 6
        assert t2.value("price_per_h", model="24xlarge") == 5.376

    def test_fig02_quick(self):
        result = run_experiment("fig02", ExperimentConfig.preset("quick"))
        assert {r["mode"] for r in result.rows} == {"nat", "nocont"}
        assert any("degradation" in n for n in result.notes)


class TestExport:
    def make(self):
        return ExperimentResult(
            experiment="x", title="T",
            rows=({"mode": "a", "v": 1.0}, {"mode": "b", "v": 2.0}),
            notes=("hello",),
        )

    def test_to_json_roundtrip(self):
        import json

        data = json.loads(self.make().to_json())
        assert data["experiment"] == "x"
        assert data["rows"][1]["v"] == 2.0
        assert data["notes"] == ["hello"]

    def test_from_json_inverts_to_json(self):
        original = self.make()
        rebuilt = ExperimentResult.from_json(original.to_json())
        assert rebuilt == original
        assert rebuilt.rows == original.rows
        assert type(rebuilt.rows) is tuple and type(rebuilt.notes) is tuple

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            ExperimentResult.from_json("not json{")
        with pytest.raises(ConfigurationError):
            ExperimentResult.from_json('{"experiment": "x"}')

    def test_with_meta_merges(self):
        result = self.make().with_meta(wall_s=1.5)
        result = result.with_meta(config_fingerprint="abc", wall_s=2.0)
        assert result.meta == {"wall_s": 2.0, "config_fingerprint": "abc"}
        assert "meta: " in result.render()
        assert self.make().meta == {}

    def test_roundtrip_property(self):
        """Property-style: render/columns survive to_json → from_json
        for arbitrary JSON-native rows, notes and meta."""
        from hypothesis import given, settings
        from hypothesis import strategies as st

        scalars = st.one_of(
            st.none(), st.booleans(), st.integers(-2**31, 2**31),
            st.floats(allow_nan=False, allow_infinity=False),
            st.text(max_size=20),
        )
        keys = st.text(
            st.characters(codec="ascii", exclude_characters="\0"),
            min_size=1, max_size=8,
        )
        rows = st.lists(
            st.dictionaries(keys, scalars, min_size=1, max_size=5),
            min_size=1, max_size=5,
        ).map(tuple)

        @settings(max_examples=60, deadline=None)
        @given(
            rows=rows,
            notes=st.lists(st.text(max_size=30), max_size=3).map(tuple),
            meta=st.dictionaries(keys, scalars, max_size=3),
        )
        def check(rows, notes, meta):
            original = ExperimentResult(
                experiment="prop", title="P",
                rows=rows, notes=notes, meta=meta,
            )
            rebuilt = ExperimentResult.from_json(original.to_json())
            assert rebuilt == original
            assert rebuilt.columns() == original.columns()
            assert rebuilt.render() == original.render()

        check()

    def test_real_experiment_roundtrip(self):
        """An actual registered experiment survives the round trip
        bit for bit — the campaign cache's core assumption."""
        result = run_experiment(
            "fig08", ExperimentConfig.preset("quick")
        ).with_meta(wall_s=0.5, config_fingerprint="abc")
        rebuilt = ExperimentResult.from_json(result.to_json())
        assert rebuilt == result
        assert all(
            type(new_value) is type(old_value)
            for new_row, old_row in zip(rebuilt.rows, result.rows)
            for new_value, old_value in zip(new_row.values(),
                                            old_row.values())
        )

    def test_to_csv(self):
        text = self.make().to_csv()
        lines = text.strip().splitlines()
        assert lines[0] == "mode,v"
        assert lines[1] == "a,1.0"


class TestCli:
    def test_main_runs_tables(self, capsys):
        from repro.harness.__main__ import main

        assert main(["table01", "table02", "--preset", "quick"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 2" in out

    def test_list_flag(self, capsys):
        from repro.harness.__main__ import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig09" in out and "ablation_no_batching" in out

    def test_list_flag_describes(self, capsys):
        from repro.harness.__main__ import main
        from repro.harness.registry import describe

        assert main(["--list"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == len(EXPERIMENTS)
        by_id = {line.split()[0]: line for line in lines}
        assert set(by_id) == set(EXPERIMENTS)
        for experiment, line in by_id.items():
            assert describe(experiment) in line

    def test_serial_run_stamps_meta(self, capsys):
        from repro.harness.__main__ import main

        assert main(["table01", "--preset", "quick"]) == 0
        out = capsys.readouterr().out
        assert "meta: " in out and "wall_s=" in out
        fingerprint = ExperimentConfig.preset("quick").fingerprint()
        assert f"config_fingerprint={fingerprint}" in out

    def test_json_and_csv_export(self, tmp_path, capsys):
        from repro.harness.__main__ import main

        assert main([
            "table02", "--preset", "quick",
            "--json", str(tmp_path / "j"), "--csv", str(tmp_path / "c"),
        ]) == 0
        assert (tmp_path / "j" / "table02.json").exists()
        csv_text = (tmp_path / "c" / "table02.csv").read_text()
        assert "24xlarge" in csv_text

    def test_trace_export(self, tmp_path, capsys):
        import json

        from repro.harness.__main__ import main

        assert main([
            "fig02", "--preset", "quick", "--trace", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "trace summary" in out
        assert "ui.perfetto.dev" in out

        # Chrome trace_event JSON: well-formed, with complete events.
        trace = json.loads((tmp_path / "fig02.trace.json").read_text())
        events = trace["traceEvents"]
        assert events and any(e.get("ph") == "X" for e in events)
        assert all({"ph", "pid"} <= set(e) for e in events)

        # JSONL span dump: every line parses and has the core fields.
        lines = (tmp_path / "fig02.spans.jsonl").read_text().splitlines()
        assert lines
        for line in lines:
            record = json.loads(line)
            assert {"kind", "cat", "name", "ts", "dur", "run"} <= set(record)

        # Metrics dump: Prometheus-flavoured text.
        metrics_text = (tmp_path / "fig02.metrics.txt").read_text()
        assert "# TYPE" in metrics_text

    def test_trace_leaves_no_active_tracer(self, tmp_path, capsys):
        from repro import obs
        from repro.harness.__main__ import main

        assert main(["fig02", "--preset", "quick",
                     "--trace", str(tmp_path)]) == 0
        capsys.readouterr()
        assert obs.tracer() is obs.NULL


class TestCaptureCli:
    """The --pcap/--flows surfacing (the CI capture smoke runs this
    same path from the command line)."""

    def test_pcap_and_flows_export(self, tmp_path, capsys):
        from repro.harness.__main__ import main
        from repro.obs.pcap import read_pcapng

        assert main([
            "reliability", "--preset", "quick",
            "--pcap", str(tmp_path), "--flows",
        ]) == 0
        out = capsys.readouterr().out
        assert "flow table" in out
        assert "open in Wireshark" in out
        pcap = tmp_path / "reliability.pcapng"
        parsed = read_pcapng(pcap)
        assert parsed.interfaces  # one block per tapped device
        assert parsed.packets
        stamps = [p.ts for p in parsed.packets]
        assert stamps == sorted(stamps)
        assert (tmp_path / "reliability.flows.txt").read_text()

    def test_flows_without_pcap(self, tmp_path, capsys):
        from repro.harness.__main__ import main

        assert main([
            "reliability", "--preset", "quick", "--flows",
            "--trace", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "flow table" in out
        assert not (tmp_path / "reliability.pcapng").exists()
        assert (tmp_path / "reliability.flows.txt").exists()

    def test_capture_filter_flag(self, tmp_path, capsys):
        from repro.harness.__main__ import main
        from repro.obs.pcap import read_pcapng

        assert main([
            "reliability", "--preset", "quick",
            "--pcap", str(tmp_path), "--filter", "host 203.0.113.1",
        ]) == 0
        parsed = read_pcapng(tmp_path / "reliability.pcapng")
        assert parsed.packets == ()  # nothing talks to that host

    def test_pcap_refused_in_campaign_mode(self, tmp_path):
        import pytest

        from repro.harness.__main__ import main

        with pytest.raises(SystemExit):
            main(["table01", "--jobs", "2", "--pcap", str(tmp_path)])

    def test_captured_runner_reconciles_with_health(self, tmp_path):
        from repro.harness.registry import run_experiment_captured
        from repro.harness import ExperimentConfig

        config = ExperimentConfig.preset("quick")
        _result, trace_art, cap_art = run_experiment_captured(
            "reliability", config, trace_dir=tmp_path,
        )
        assert cap_art.pcap_path is not None and cap_art.pcap_path.exists()
        assert cap_art.packet_count > 0
        assert cap_art.flow_count > 0
        assert "counters" in trace_art.summary  # labelled drops folded in
        session = cap_art.session
        assert session.frames_seen == (
            session.frames_delivered + sum(session.drops.values())
        )

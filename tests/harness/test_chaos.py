"""The chaos experiment: recovery works, and it is bit-reproducible."""

import json

import pytest

from repro import obs
from repro.faults import FaultPlan, FaultSpec
from repro.harness import chaos
from repro.harness.__main__ import main
from repro.harness.config import ExperimentConfig


@pytest.fixture(scope="module")
def result():
    return chaos.run(ExperimentConfig.preset("quick"))


class TestChaosExperiment:
    def test_no_unhandled_errors(self, result):
        assert all(row["unhandled"] == 0 for row in result.rows)
        assert all(row["exhausted"] == 0 for row in result.rows)

    def test_brfusion_survives_hotplug_churn(self, result):
        row = result.value("retries", scenario="hotplug", plugin="brfusion")
        assert row > 0  # faults actually fired
        assert result.value("success_rate", scenario="hotplug",
                            plugin="brfusion") == 1.0

    def test_refusal_storm_falls_back_to_nat(self, result):
        assert result.value("fallbacks", scenario="refusal-storm",
                            plugin="brfusion") > 0
        assert result.value("success_rate", scenario="refusal-storm",
                            plugin="brfusion") == 1.0

    def test_vm_crash_reschedules_pods(self, result):
        rescheduled = sum(row["rescheduled"] for row in result.rows
                          if row["scenario"] == "vm-crash")
        assert rescheduled > 0
        assert all(row["success_rate"] == 1.0 for row in result.rows
                   if row["scenario"] == "vm-crash")

    def test_recovery_wait_accounted(self, result):
        assert result.value("recovery_wait_ms", scenario="refusal-storm",
                            plugin="brfusion") > 0


class TestDeterminism:
    def capture_run(self, scenario, plan, seed=2019):
        config = ExperimentConfig(seed=seed)
        with obs.capture() as (tracer, metrics):
            rows, summary = chaos.run_scenario(scenario, plan, config)
            events = [(s.category, s.name, s.start, s.attrs)
                      for s in tracer.events]
            faults_series = metrics.counter("fault.injected_total").series()
            recover_series = metrics.counter("recover.actions_total").series()
        return rows, summary, events, faults_series, recover_series

    def test_same_seed_same_plan_is_bit_identical(self):
        first = self.capture_run("hotplug", chaos.hotplug_plan())
        second = self.capture_run("hotplug", chaos.hotplug_plan())
        assert first == second

    def test_crash_scenario_is_bit_identical(self):
        first = self.capture_run("vm-crash", chaos.crash_plan())
        second = self.capture_run("vm-crash", chaos.crash_plan())
        assert first == second

    def test_different_seed_differs(self):
        first = self.capture_run("hotplug", chaos.hotplug_plan(), seed=1)
        second = self.capture_run("hotplug", chaos.hotplug_plan(), seed=2)
        assert first[2] != second[2]  # different fault event sequence


class TestCli:
    def test_faults_flag_runs_custom_plan(self, tmp_path, capsys):
        plan = FaultPlan(specs=(
            FaultSpec(kind="hotplug.refuse", target="vm*", probability=0.4),
        ))
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        assert main(["chaos", "--preset", "quick",
                     "--faults", str(path)]) == 0
        out = capsys.readouterr().out
        assert "custom" in out
        assert "Chaos" in out

    def test_chaos_json_export(self, tmp_path, capsys):
        assert main(["chaos", "--preset", "quick",
                     "--json", str(tmp_path)]) == 0
        data = json.loads((tmp_path / "chaos.json").read_text())
        assert data["experiment"] == "chaos"
        assert any(row["scenario"] == "vm-crash" for row in data["rows"])

"""The netstack experiment: matrix shape, the config knob, the CLI
``--backend`` flag and its error path."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.harness import ExperimentConfig, run_experiment
from repro.harness.__main__ import main

BACKENDS = (
    "brfusion", "hostlo", "in_vm_nat", "offloaded_nsm", "vxlan_overlay",
)


def quick(**overrides):
    return dataclasses.replace(
        ExperimentConfig.preset("quick"), **overrides
    )


class TestConfigKnob:
    def test_unknown_backend_lists_registered(self):
        with pytest.raises(ConfigurationError) as err:
            ExperimentConfig(netstack_backend="smoke-signals")
        message = str(err.value)
        assert "smoke-signals" in message
        for name in BACKENDS:
            assert name in message

    def test_known_backend_accepted(self):
        config = ExperimentConfig(netstack_backend="offloaded_nsm")
        assert config.netstack_backend == "offloaded_nsm"

    @pytest.mark.parametrize("kwargs", [
        {"netstack_frames": 0},
        {"netstack_loss": -0.1},
        {"netstack_loss": 1.5},
    ])
    def test_scale_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(**kwargs)

    def test_fingerprint_tracks_backend(self):
        assert (ExperimentConfig().fingerprint()
                != ExperimentConfig(netstack_backend="hostlo").fingerprint())


class TestExperiment:
    def test_matrix_covers_every_backend(self):
        result = run_experiment("netstack", quick())
        summaries = [r for r in result.rows if r["scenario"] == "summary"]
        assert [r["backend"] for r in summaries] == list(BACKENDS)
        # The acceptance criteria: identical delivered bytes, balanced
        # ledgers, exactly-once recovery, zero violations — per backend.
        assert len({r["delivered_bytes"] for r in summaries}) == 1
        assert all(r["clean_conserved"] for r in summaries)
        assert all(r["faulted_conserved"] for r in summaries)
        assert all(r["arq_exactly_once"] for r in summaries)
        assert all(r["violations"] == 0 for r in summaries)

    def test_stage_matrix_has_offloaded_column(self):
        result = run_experiment("netstack", quick())
        stage_rows = [
            r for r in result.rows if r["scenario"] == "stage-cycles"
        ]
        assert stage_rows
        assert all("offloaded_nsm" in r for r in stage_rows)
        by_stage = {r["stage"]: r for r in stage_rows}
        # The offloaded column is genuinely distinct: it pays the NSM
        # boundary where in-VM backends pay the guest stack.
        assert by_stage["nsm_copy"]["offloaded_nsm"] > 0
        assert by_stage["nsm_copy"]["in_vm_nat"] == 0
        assert by_stage["stack_tx"]["offloaded_nsm"] == 0
        assert by_stage["stack_tx"]["in_vm_nat"] > 0

    def test_single_backend_config(self):
        result = run_experiment(
            "netstack", quick(netstack_backend="offloaded_nsm")
        )
        summaries = [r for r in result.rows if r["scenario"] == "summary"]
        assert [r["backend"] for r in summaries] == ["offloaded_nsm"]

    def test_deterministic(self):
        assert (run_experiment("netstack", quick()).rows
                == run_experiment("netstack", quick()).rows)

    def test_violations_note_present(self):
        result = run_experiment("netstack", quick())
        assert any("must be zero" in note for note in result.notes)
        assert any("identical delivered bytes" in note
                   for note in result.notes)


class TestCli:
    def test_backend_flag_restricts_the_sweep(self, capsys):
        assert main(["netstack", "--preset", "quick",
                     "--backend", "hostlo"]) == 0
        out = capsys.readouterr().out
        assert "hostlo" in out
        assert "in_vm_nat" not in out

    def test_backend_flag_unknown_lists_registry(self):
        with pytest.raises(ConfigurationError, match="registered:"):
            main(["netstack", "--preset", "quick", "--backend", "nope"])

    def test_backend_refused_in_campaign_mode(self):
        with pytest.raises(SystemExit):
            main(["netstack", "--backend", "hostlo", "--jobs", "2"])

"""The reliability experiment: goodput under loss, watchdog eviction,
zero invariant violations, and the CLI flags driving it."""

import dataclasses
import pathlib

import pytest

from repro.harness import reliability
from repro.harness.__main__ import main
from repro.harness.config import ExperimentConfig


@pytest.fixture(scope="module")
def result():
    return reliability.run(ExperimentConfig.preset("quick"))


class TestLossSweep:
    def test_arq_converges_at_every_loss_rate(self, result):
        for row in result.select(mode="arq", scenario="loss-sweep"):
            assert row["delivered"] == row["messages"]
            assert row["exactly_once"]
            assert row["exhausted"] == 0

    def test_raw_lane_loses_messages_under_loss(self, result):
        lossy = result.value("delivered", mode="raw", loss_pct=5.0)
        messages = result.value("messages", mode="raw", loss_pct=5.0)
        assert lossy < messages  # fire-and-forget really is unreliable

    def test_loss_costs_goodput_not_delivery(self, result):
        clean = result.value("goodput_mbps", mode="arq", loss_pct=0.0)
        lossy = result.value("goodput_mbps", mode="arq", loss_pct=5.0)
        assert 0 < lossy < clean
        assert result.value("retransmissions", mode="arq", loss_pct=5.0) > 0

    def test_faultless_arq_never_retransmits(self, result):
        assert result.value("retransmissions", mode="arq",
                            loss_pct=0.0) == 0

    def test_schedule_determinism_note(self, result):
        assert any("deterministic: True" in note for note in result.notes)


class TestStallScenario:
    def stall_row(self, result):
        (row,) = result.select(scenario="hostlo-stall")
        return row

    def test_watchdog_evicts_within_interval(self, result):
        row = self.stall_row(result)
        config = ExperimentConfig.preset("quick")
        assert row["evictions"] == 1
        assert 0 <= row["eviction_ms"] <= 1e3 * config.health_interval_s
        assert row["drained_frames"] > 0

    def test_pod_degrades_instead_of_wedging(self, result):
        row = self.stall_row(result)
        assert row["degraded_nodes"] != "-"
        assert row["cross_ok_pre_stall"] > 0
        assert row["cross_ok_post_evict"] == 0
        assert row["loopback_ok_post_evict"] > 0  # survivors keep talking
        assert row["recovery_actions"] >= 1


class TestInvariants:
    def test_zero_violations_everywhere(self, result):
        assert all(row["violations"] == 0 for row in result.rows)


class TestConfigKnobs:
    def test_reliable_flag_skips_raw_lane(self):
        config = dataclasses.replace(ExperimentConfig.preset("quick"),
                                     reliable=True)
        result = reliability.run(config)
        assert not result.select(mode="raw")
        assert result.select(mode="arq")

    def test_custom_fault_plan_replaces_sweep(self):
        plan = pathlib.Path(__file__).parents[2] / "examples" \
            / "faults_lossy.json"
        config = dataclasses.replace(ExperimentConfig.preset("quick"),
                                     fault_plan=str(plan))
        result = reliability.run(config)
        rows = result.select(scenario="custom", mode="arq")
        assert len(rows) == 1
        assert rows[0]["retransmissions"] > 0
        assert rows[0]["exactly_once"]
        assert not result.select(scenario="loss-sweep")

    def test_bad_loss_rates_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ExperimentConfig(loss_rates=(1.5,))
        with pytest.raises(ConfigurationError):
            ExperimentConfig(health_interval_s=0.0)


class TestCli:
    def test_reliable_and_health_flags(self, capsys):
        assert main(["reliability", "--preset", "quick",
                     "--reliable", "--health"]) == 0
        out = capsys.readouterr().out
        assert "raw" not in out.split("==")[-1].splitlines()[3]
        assert "hostlo-stall" in out

    def test_health_flag_audits_chaos(self, capsys):
        assert main(["chaos", "--preset", "quick", "--health"]) == 0
        out = capsys.readouterr().out
        assert "health violations 0" in out

"""The fabric experiment: ECMP spread, incast overflow, elephant
re-pinning, fault reroute, rack-aware placement — and its config knobs."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.harness import fabric
from repro.harness.config import ExperimentConfig
from repro.harness.registry import EXPERIMENTS, describe


def small_config():
    return dataclasses.replace(
        ExperimentConfig.preset("quick"),
        trace_users=16, fabric_flows=8, fabric_frames=8,
    )


@pytest.fixture(scope="module")
def result():
    return fabric.run(small_config())


class TestRegistration:
    def test_registered_and_described(self):
        assert "fabric" in EXPERIMENTS
        assert describe("fabric").startswith("Fabric:")

    def test_result_identity(self, result):
        assert result.experiment == "fabric"
        assert result.rows


class TestLanes:
    def test_ecmp_uses_multiple_uplinks(self, result):
        (row,) = result.select(scenario="ecmp-spread")
        assert row["uplinks_used"] >= 2
        assert row["delivered"] == row["sent"]

    def test_incast_overflows_the_bounded_rings(self, result):
        (row,) = result.select(scenario="incast")
        assert row["overflow_drops"] > 0
        assert row["delivered"] + row["overflow_drops"] <= row["sent"] + \
            row["serviced_frames"]

    def test_repinning_reduces_the_hottest_uplink(self, result):
        hash_max = result.value("max_uplink_bytes",
                                scenario="elephant-mice", mode="hash")
        repin_row, = result.select(scenario="elephant-mice",
                                   mode="repinned")
        assert repin_row["max_uplink_bytes"] < hash_max
        assert repin_row["max_reduction_pct"] > 0
        assert repin_row["repins_moved"] >= 1

    def test_link_down_reroutes_every_flow(self, result):
        (row,) = result.select(scenario="link-down")
        assert row["reroute_ok"]
        assert row["fault_events"] == 2  # down, then restore

    def test_rack_awareness_beats_fullness_only(self, result):
        baseline = result.value("mean_distance", scenario="rack-sched",
                                mode="most-requested")
        aware = result.value("mean_distance", scenario="rack-sched",
                             mode="rack-aware")
        assert aware < baseline

    def test_reflection_tax_objective_reduces_effective_cost(self, result):
        dollars = result.select(scenario="reflection-cost",
                                mode="dollars")[0]
        topo = result.select(scenario="reflection-cost",
                             mode="topology")[0]
        assert topo["effective_cost_per_h"] <= \
            dollars["effective_cost_per_h"]

    def test_zero_invariant_violations_everywhere(self, result):
        assert all(row["violations"] == 0 for row in result.rows)


class TestConfigKnobs:
    @pytest.mark.parametrize("field,value", [
        ("fabric_k", 3),
        ("fabric_k", 2),
        ("fabric_hosts_per_edge", 0),
        ("fabric_hosts_per_edge", 3),
        ("fabric_flows", 0),
        ("fabric_frames", 0),
        ("fabric_queue_capacity", 0),
    ])
    def test_bad_fabric_settings_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            dataclasses.replace(ExperimentConfig(), **{field: value})

    def test_presets_scale_the_fabric_load(self):
        quick = ExperimentConfig.preset("quick")
        full = ExperimentConfig.preset("full")
        assert quick.fabric_flows < full.fabric_flows
        assert quick.fabric_frames < full.fabric_frames

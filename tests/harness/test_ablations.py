"""Tests for the design-choice ablations."""

import pytest

from repro.harness import ExperimentConfig, run_experiment

CONFIG = ExperimentConfig.preset("quick")


@pytest.fixture(scope="module")
def hostlo_thread():
    return run_experiment("ablation_hostlo_thread", CONFIG)


class TestHostloThreadAblation:
    def test_throughput_scales_with_reflect_cores(self, hostlo_thread):
        rows = sorted(hostlo_thread.rows, key=lambda r: r["reflect_cores"])
        throughputs = [r["throughput_mbps"] for r in rows]
        assert throughputs == sorted(throughputs)
        # Removing the serialization at least doubles throughput.
        assert throughputs[-1] > 2.0 * throughputs[0]

    def test_diminishing_returns(self, hostlo_thread):
        # Once the kthread stops binding, another bottleneck takes over:
        # the last doubling of cores gains less than the first.
        rows = sorted(hostlo_thread.rows, key=lambda r: r["reflect_cores"])
        gain_first = rows[1]["throughput_mbps"] / rows[0]["throughput_mbps"]
        gain_last = rows[3]["throughput_mbps"] / rows[2]["throughput_mbps"]
        assert gain_last < gain_first


class TestNetfilterAblation:
    def test_nat_sensitive_brfusion_immune(self):
        result = run_experiment("ablation_netfilter_cost", CONFIG)

        def thr(mode, factor):
            return result.value("throughput_mbps", mode=mode,
                                netfilter_scale=factor)

        assert thr("nat", 4.0) < 0.6 * thr("nat", 0.5)
        assert thr("brfusion", 4.0) == pytest.approx(
            thr("brfusion", 0.5), rel=1e-6
        )


class TestNoBatchingAblation:
    def test_overlay_hurt_most_hostlo_least(self):
        result = run_experiment("ablation_no_batching", CONFIG)

        def ratio(mode):
            unbatched = result.value("throughput_mbps", variant="unbatched",
                                     mode=mode)
            batched = result.value("throughput_mbps", variant="batched",
                                   mode=mode)
            return unbatched / batched

        assert ratio("overlay") < ratio("nocont") < 1.0
        assert ratio("hostlo") > ratio("overlay")


class TestRuleBloatAblation:
    def test_nat_degrades_brfusion_flat(self):
        result = run_experiment("ablation_rule_bloat", CONFIG)

        def thr(mode, neighbors):
            return result.value("throughput_mbps", mode=mode,
                                neighbor_pods=neighbors)

        assert thr("nat", 19) < 0.9 * thr("nat", 0)
        assert thr("brfusion", 19) == pytest.approx(thr("brfusion", 0),
                                                    rel=1e-6)
        # Monotone decay for NAT.
        series = [thr("nat", n) for n in (0, 4, 9, 19)]
        assert series == sorted(series, reverse=True)

"""Fat-tree construction, addressing, distances and forwarding."""

import pytest

from repro.errors import TopologyError
from repro.fabric import (
    DISTANCE_CROSS_POD,
    DISTANCE_SAME_HOST,
    DISTANCE_SAME_POD,
    DISTANCE_SAME_RACK,
    FabricSwitch,
    FatTree,
)
from repro.health import HealthScope, run_checks
from repro.net.addresses import ip
from repro.net.forwarding import ForwardingEngine
from repro.sim import Environment


@pytest.fixture
def tree():
    return FatTree(Environment(), k=4, hosts_per_edge=2, seed=11)


def client_of(tree, host_name):
    host = tree.host(host_name)
    return host.create_attached_namespace(
        f"cl-{host_name}", domain=f"client:{host_name}"
    )


def addr_of(ns):
    return ns.device("eth0").primary_ip


class TestConstruction:
    def test_k4_shape(self, tree):
        # (k/2)^2 cores + k * (k/2 edge + k/2 agg) switches.
        assert len(tree.switches) == 4 + 4 * 4
        assert len(tree.hosts) == 4 * 2 * 2
        # edge-agg mesh + agg-core + one rack cable per host.
        assert len(tree.links) == 16 + 16 + 16
        assert len(tree.racks) == 8
        assert all(len(hosts) == 2 for hosts in tree.racks.values())

    def test_every_edge_and_agg_has_equal_cost_uplinks(self, tree):
        for switch in tree.switches.values():
            if switch.tier == "core":
                assert not switch.uplinks
            else:
                assert len(switch.uplinks) == 2

    @pytest.mark.parametrize("k", [3, 2, 0, 17, 18])
    def test_bad_arity_rejected(self, k):
        with pytest.raises(TopologyError):
            FatTree(Environment(), k=k)

    @pytest.mark.parametrize("hpe", [0, 3])
    def test_bad_rack_size_rejected(self, hpe):
        with pytest.raises(TopologyError):
            FatTree(Environment(), k=4, hosts_per_edge=hpe)

    def test_bad_tier_rejected(self):
        with pytest.raises(TopologyError):
            FabricSwitch("x", "spine")

    def test_host_subnets_disjoint_and_resolvable(self, tree):
        subnets = [tree.host_subnet(name) for name in tree.hosts]
        assert len({str(s) for s in subnets}) == len(subnets)
        for name in tree.hosts:
            probe = tree.host_subnet(name).host(5)
            assert tree.host_of_ip(probe) == name
        assert tree.host_of_ip(ip("192.168.0.1")) is None

    def test_wiring_invariants_hold(self, tree):
        assert not run_checks(HealthScope.of(fabrics=(tree,)))
        assert len(tree.namespaces()) == len(tree.switches)


class TestDistances:
    def test_host_distance_ladder(self, tree):
        assert tree.host_distance("h-p0e0n0", "h-p0e0n0") == \
            DISTANCE_SAME_HOST
        assert tree.host_distance("h-p0e0n0", "h-p0e0n1") == \
            DISTANCE_SAME_RACK
        assert tree.host_distance("h-p0e0n0", "h-p0e1n0") == \
            DISTANCE_SAME_POD
        assert tree.host_distance("h-p0e0n0", "h-p3e1n1") == \
            DISTANCE_CROSS_POD

    def test_rack_distance(self, tree):
        assert tree.rack_distance("edge-p0e0", "edge-p0e0") == \
            DISTANCE_SAME_RACK
        assert tree.rack_distance("edge-p0e0", "edge-p0e1") == \
            DISTANCE_SAME_POD
        assert tree.rack_distance("edge-p0e0", "edge-p2e0") == \
            DISTANCE_CROSS_POD

    def test_unknown_names_raise(self, tree):
        with pytest.raises(TopologyError):
            tree.host_distance("h-p0e0n0", "nope")
        with pytest.raises(TopologyError):
            tree.switch("nope")
        with pytest.raises(TopologyError):
            tree.link("nope")


class TestForwarding:
    def test_cross_pod_delivery_walks_all_three_tiers(self, tree):
        fwd = ForwardingEngine()
        src = client_of(tree, "h-p0e0n0")
        dst = client_of(tree, "h-p3e1n1")
        delivery = fwd.send(src, addr_of(dst), 80)
        assert delivery.delivered
        tiers = [hop.split(":")[1] for hop in delivery.hops
                 if hop.startswith("fabric:")]
        assert any(name.startswith("edge-p0") for name in tiers)
        assert any(name.startswith("agg-") for name in tiers)
        assert any(name.startswith("core-") for name in tiers)
        assert fwd.frames_delivered == 1

    def test_same_rack_stays_at_the_edge(self, tree):
        fwd = ForwardingEngine()
        src = client_of(tree, "h-p0e0n0")
        dst = client_of(tree, "h-p0e0n1")
        delivery = fwd.send(src, addr_of(dst), 80)
        assert delivery.delivered
        fabric_hops = [hop for hop in delivery.hops
                       if hop.startswith("fabric:")]
        assert len(fabric_hops) == 1
        assert fabric_hops[0].split(":")[1] == "edge-p0e0"

    def test_dead_uplinks_drop_labelled_no_route(self, tree):
        fwd = ForwardingEngine()
        src = client_of(tree, "h-p0e0n0")
        dst = client_of(tree, "h-p1e0n0")
        for link in tree.uplink_links("edge-p0e0").values():
            link.set_down()
        delivery = fwd.send(src, addr_of(dst), 80)
        assert not delivery.delivered
        assert fwd.drops == {"fabric-no-route": 1}
        assert not run_checks(HealthScope.of(fabrics=(tree,),
                                             forwarding=fwd))

    def test_downed_switch_drops_labelled(self, tree):
        fwd = ForwardingEngine()
        src = client_of(tree, "h-p0e0n0")
        dst = client_of(tree, "h-p0e0n1")
        tree.switch("edge-p0e0").set_down()
        delivery = fwd.send(src, addr_of(dst), 80)
        assert not delivery.delivered
        assert fwd.drops == {"fabric.switch-down": 1}

    def test_single_link_failure_reroutes(self, tree):
        fwd = ForwardingEngine()
        src = client_of(tree, "h-p0e0n0")
        dst = client_of(tree, "h-p2e0n0")
        address = addr_of(dst)
        for port_index in range(20):
            fwd.send(src, address, 10_000 + port_index)
        assert fwd.frames_delivered == 20
        name, link = sorted(tree.uplink_links("edge-p0e0").items())[0]
        link.set_down()
        for port_index in range(20):
            fwd.send(src, address, 10_000 + port_index)
        assert fwd.frames_delivered == 40  # every flow found the sibling
        assert not run_checks(HealthScope.of(fabrics=(tree,),
                                             forwarding=fwd))


class TestSwitchDecisions:
    def test_down_route_wins_over_ecmp(self, tree):
        edge = tree.switch("edge-p0e0")
        local = tree.host_subnet("h-p0e0n0").host(9)
        port = edge.select_port("whatever", local)
        assert port is not None and port not in edge.uplinks

    def test_pin_overrides_hash_and_falls_back_when_dead(self, tree):
        edge = tree.switch("edge-p0e0")
        remote = tree.host_subnet("h-p2e0n0").host(9)
        live = edge.live_uplinks(remote)
        assert len(live) == 2
        hashed = edge.select_port("sig", remote)
        other = next(p for p in live if p is not hashed)
        edge.pin("sig", other.name)
        assert edge.select_port("sig", remote) is other
        assert other.link is not None
        other.link.set_down()
        assert edge.select_port("sig", remote) is hashed
        edge.unpin_all()
        assert not edge.pins

    def test_pin_unknown_uplink_rejected(self, tree):
        with pytest.raises(TopologyError):
            tree.switch("edge-p0e0").pin("sig", "not-a-port")

    def test_foreign_down_route_rejected(self, tree):
        edge = tree.switch("edge-p0e0")
        foreign = tree.switch("edge-p0e1").ports[0]
        with pytest.raises(TopologyError):
            edge.add_down_route(tree.host_subnet("h-p0e0n0"), foreign)


class TestCongestion:
    def test_bounded_rings_overflow_inside_the_window(self):
        tree = FatTree(Environment(), k=4, hosts_per_edge=2, seed=3,
                       queue_capacity=4)
        fwd = ForwardingEngine()
        victim = "h-p0e0n0"
        dst = addr_of(client_of(tree, victim))
        senders = [client_of(tree, name) for name in tree.hosts
                   if name != victim]
        with tree.congestion():
            for round_index in range(3):
                for index, sender in enumerate(senders):
                    fwd.send(sender, dst, 7000 + index)
        assert fwd.drops.get("fabric-overflow", 0) > 0
        serviced = tree.service_all()
        assert serviced > 0
        assert not run_checks(HealthScope.of(fabrics=(tree,),
                                             forwarding=fwd))
        # Outside the window the same traffic flows drop-free.
        before = fwd.drops.get("fabric-overflow", 0)
        for index, sender in enumerate(senders):
            fwd.send(sender, dst, 7000 + index)
        assert fwd.drops.get("fabric-overflow", 0) == before

"""Property tests: ECMP stability and fabric-wide frame conservation."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fabric import FabricSwitch, FatTree, ecmp_index, flow_signature
from repro.health import HealthScope, run_checks
from repro.net.addresses import ip
from repro.net.devices import PhysicalNic
from repro.net.forwarding import ForwardingEngine
from repro.net.links import PhysicalLink
from repro.sim import Environment

port_numbers = st.integers(min_value=1, max_value=65_535)
octets = st.integers(min_value=0, max_value=255)
names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=12)


def addresses(draw):
    a, b, c, d = (draw(octets) for _ in range(4))
    return f"{a}.{b}.{c}.{d}"


@st.composite
def signatures(draw):
    src = addresses(draw)
    dst = addresses(draw)
    proto = draw(st.sampled_from(["tcp", "udp"]))
    return flow_signature(src, dst, proto, draw(port_numbers))


class TestEcmpProperties:
    @given(signature=signatures(), salt=names,
           n=st.integers(min_value=1, max_value=16))
    @settings(max_examples=50, deadline=None)
    def test_deterministic_and_in_range(self, signature, salt, n):
        index = ecmp_index(signature, salt, n)
        assert 0 <= index < n
        assert ecmp_index(signature, salt, n) == index

    @given(signature=signatures(),
           permutation=st.permutations(list(range(4))))
    @settings(max_examples=25, deadline=None)
    def test_selection_survives_port_insertion_order(self, signature,
                                                     permutation):
        """The chosen uplink depends on the flow and the switch — never
        on the order the cables happened to be plugged in."""
        dst = ip("172.16.0.9")

        def build(order):
            switch = FabricSwitch("sw-under-test", "edge")
            for index in order:
                port = switch.add_port(f"sw-up{index}", uplink=True)
                # A bare peer NIC reads as a host: always viable.
                PhysicalLink(f"cable-{index}", port,
                             PhysicalNic(f"peer-{index}"))
            return switch

        canonical = build(range(4))
        shuffled = build(permutation)
        expected = canonical.select_port(signature, dst)
        got = shuffled.select_port(signature, dst)
        assert expected is not None and got is not None
        assert got.name == expected.name


class TestConservationProperties:
    @given(
        flows=st.lists(
            st.tuples(st.integers(min_value=0, max_value=3),
                      st.integers(min_value=0, max_value=3),
                      port_numbers),
            min_size=1, max_size=24,
        ),
        dead_links=st.sets(st.integers(min_value=0, max_value=31),
                           max_size=6),
        cut_at=st.integers(min_value=0, max_value=23),
    )
    @settings(max_examples=25, deadline=None)
    def test_every_frame_is_accounted_under_random_faults(
            self, flows, dead_links, cut_at):
        """sent == delivered + labelled drops, whatever dies whenever."""
        tree = FatTree(Environment(), k=4, hosts_per_edge=1, seed=1)
        fwd = ForwardingEngine()
        clients = {}
        for name in tree.hosts:
            clients[name] = tree.host(name).create_attached_namespace(
                f"cl-{name}", domain=f"client:{name}"
            )
        host_names = sorted(tree.hosts)
        link_names = sorted(tree.links)
        for step, (src_index, dst_index, port) in enumerate(flows):
            if step == cut_at:
                for dead in dead_links:
                    tree.link(link_names[dead % len(link_names)]).set_down()
            src = clients[host_names[src_index * 4 % len(host_names)]]
            dst = clients[host_names[dst_index]]
            fwd.send(src, dst.device("eth0").primary_ip, port)
        assert fwd.frames_sent == len(flows)
        assert fwd.frames_sent == fwd.frames_delivered + sum(
            fwd.drops.values()
        )
        assert not run_checks(HealthScope.of(
            fabrics=(tree,), forwarding=fwd,
            namespaces=tuple(clients.values()),
        ))

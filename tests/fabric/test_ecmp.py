"""ECMP hashing: determinism, range, salt independence."""

import pytest

from repro.errors import TopologyError
from repro.fabric import ecmp_index, flow_signature
from repro.net import flows as net_flows


class TestFlowSignature:
    def test_canonical_shape(self):
        assert flow_signature("10.0.0.1", "10.3.2.1", "tcp", 80) == \
            "10.0.0.1>10.3.2.1/tcp:80"

    def test_fabric_reexports_the_net_definition(self):
        # One definition, everywhere: hashing and flow accounting must
        # agree on the identity string or pinning silently misses.
        assert flow_signature is net_flows.flow_signature

    def test_flow_key_signature_matches(self):
        key = net_flows.FlowKey("10.0.0.1", "10.3.2.1", "tcp", 80, "podX")
        assert key.signature == flow_signature("10.0.0.1", "10.3.2.1",
                                               "tcp", 80)


class TestEcmpIndex:
    def test_deterministic_and_in_range(self):
        for n in (1, 2, 3, 8):
            for port in range(50):
                signature = flow_signature("10.0.0.1", "10.1.0.1",
                                           "tcp", port)
                first = ecmp_index(signature, "edge-p0e0", n)
                assert 0 <= first < n
                assert ecmp_index(signature, "edge-p0e0", n) == first

    def test_salts_decorrelate_tiers(self):
        # Different switches must not all make the same choice for the
        # same flow, or one flow would monopolise one core column.
        signatures = [
            flow_signature("10.0.0.1", "10.1.0.1", "tcp", port)
            for port in range(64)
        ]
        pairs = [
            (ecmp_index(s, "edge-p0e0", 2), ecmp_index(s, "agg-p0a0", 2))
            for s in signatures
        ]
        assert any(a != b for a, b in pairs)
        assert any(a == b for a, b in pairs)

    def test_spreads_over_candidates(self):
        indexes = {
            ecmp_index(flow_signature("10.0.0.1", "10.1.0.1", "tcp", port),
                       "edge-p0e0", 2)
            for port in range(32)
        }
        assert indexes == {0, 1}

    @pytest.mark.parametrize("n", [0, -1])
    def test_empty_candidate_set_rejected(self, n):
        with pytest.raises((ValueError, TopologyError)):
            ecmp_index("sig", "salt", n)

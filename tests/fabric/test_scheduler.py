"""Rack-aware split placement and the topology cost model."""

import pytest

from repro.costsim.hostlo import improve_assignment
from repro.costsim.kubernetes import schedule_user
from repro.costsim.packing import total_cost
from repro.fabric import FatTree, TopologyAwareScheduler, TopologyCostModel
from repro.orchestrator.node import Node
from repro.orchestrator.pod import ContainerSpec, PodSpec
from repro.orchestrator.scheduler import MostRequestedScheduler
from repro.sim import Environment
from repro.traces import TraceConfig, generate_trace
from repro.virt import Vmm


@pytest.fixture
def tree():
    return FatTree(Environment(), k=4, hosts_per_edge=2, seed=9)


def baited_nodes(tree):
    """One VM per racked host, pre-loaded so every pod's fullest node
    ties: fullness-only placement scatters cross-pod, rack-aware
    placement keeps fragments inside the pod."""
    nodes, host_of_node = [], {}
    per_pod_seen = {}
    hosts_in_order = [n for rack in tree.racks.values() for n in rack]
    for index, host_name in enumerate(hosts_in_order):
        vm = Vmm(tree.host(host_name)).create_vm(
            f"node-{index:02d}", vcpus=4, memory_gb=4.0
        )
        node = Node(vm)
        pod = tree.pod_of(host_name)
        rank = per_pod_seen.get(pod, 0)
        per_pod_seen[pod] = rank + 1
        preload = 2.0 - 0.08 * rank
        node.allocate(preload, preload)
        nodes.append(node)
        host_of_node[vm.name] = host_name
    return nodes, host_of_node


def three_fragment_pod():
    return PodSpec(name="p", containers=tuple(
        ContainerSpec(name=f"c{i}", image="alpine", cpu=2.0, memory_gb=1.0)
        for i in range(3)
    ))


class TestTopologyAwareScheduler:
    def test_keeps_fragments_closer_than_fullness_only(self, tree):
        nodes, host_of_node = baited_nodes(tree)
        spec = three_fragment_pod()
        aware = TopologyAwareScheduler(tree, host_of_node)
        baseline = MostRequestedScheduler().place_split(nodes, spec)
        improved = aware.place_split(nodes, spec)
        base_mean = aware.mean_distance(
            [n for _, n in baseline.assignments]
        )
        aware_mean = aware.mean_distance(
            [n for _, n in improved.assignments]
        )
        assert base_mean > aware_mean
        # The bait worked as designed: cross-pod vs mostly-same-rack.
        assert base_mean == 6.0
        assert aware_mean < 4.0

    def test_capacity_still_wins_over_distance(self, tree):
        # Only far nodes have room: the penalty must not blackhole.
        nodes, host_of_node = baited_nodes(tree)
        for node in nodes[:4]:  # pod 0 entirely full
            node.allocate(node.cpu_free, node.memory_free)
        aware = TopologyAwareScheduler(tree, host_of_node)
        placement = aware.place_split(nodes, three_fragment_pod())
        pods = {tree.pod_of(host_of_node[n])
                for n in placement.node_names}
        assert 0 not in pods

    def test_unmapped_nodes_score_like_the_base_policy(self, tree):
        nodes, _ = baited_nodes(tree)
        aware = TopologyAwareScheduler(tree, host_of_node={})
        baseline = MostRequestedScheduler().place_split(
            nodes, three_fragment_pod()
        )
        same = aware.place_split(nodes, three_fragment_pod())
        assert baseline.assignments == same.assignments

    def test_mean_distance_reporting(self, tree):
        aware = TopologyAwareScheduler(tree, {
            "a": "h-p0e0n0", "b": "h-p0e0n1", "c": "h-p2e0n0",
        })
        assert aware.mean_distance(["a"]) == 0.0
        assert aware.mean_distance(["a", "b"]) == 2.0
        assert aware.mean_distance(["a", "b", "c"]) == pytest.approx(
            (2 + 6 + 6) / 3
        )


class TestTopologyCostModel:
    def test_zero_rate_reproduces_the_paper_objective(self, tree):
        users = generate_trace(TraceConfig(users=6, seed=3))
        blind = TopologyCostModel(tree, reflection_rate=0.0)
        for user in users:
            vms = schedule_user(user.pods)
            assert blind.cost(vms) == total_cost(vms)
            assert blind.reflection_cost(vms) == 0.0

    def test_explicit_placement_overrides_the_hash(self, tree):
        model = TopologyCostModel(tree, host_of_vm={"vm-x": "h-p1e0n0"})
        assert model.host_of("vm-x") == "h-p1e0n0"
        assert model.host_of("vm-y") in tree.hosts

    def test_cost_fn_changes_improvement_decisions(self, tree):
        """A large enough distance tax vetoes otherwise-worthwhile
        splits: the improved assignment degenerates to the baseline."""
        users = generate_trace(TraceConfig(users=24, seed=2))
        punitive = TopologyCostModel(tree, reflection_rate=1e6)
        split_free, split_taxed = 0, 0
        for user in users:
            baseline = schedule_user(user.pods)
            from repro.costsim.hostlo import split_pod_names
            free = improve_assignment(baseline)
            taxed = improve_assignment(baseline, cost_fn=punitive.cost)
            split_free += len(split_pod_names(free))
            split_taxed += len(split_pod_names(taxed))
            assert total_cost(taxed) >= total_cost(free) - 1e-9
        assert split_free > 0
        assert split_taxed <= split_free

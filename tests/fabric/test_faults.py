"""Scheduled fabric faults: link flaps, switch kills, drain accounting."""

import pytest

from repro.errors import FaultInjectionError
from repro.faults import ChaosController, FaultPlan, FaultSpec
from repro.fabric import FatTree
from repro.health import HealthScope, run_checks
from repro.net.forwarding import ForwardingEngine
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def tree(env):
    return FatTree(env, k=4, hosts_per_edge=1, seed=21)


def plan_of(*specs):
    return FaultPlan(specs=tuple(specs))


class TestSpecValidation:
    @pytest.mark.parametrize("kind",
                             ["fabric.link_down", "fabric.switch_down"])
    def test_fabric_kinds_are_scheduled(self, kind):
        with pytest.raises(FaultInjectionError):
            FaultSpec(kind=kind)  # no 'at'
        spec = FaultSpec(kind=kind, target="edge-*", at=0.5, duration=1.0)
        assert spec in plan_of(spec).scheduled


class TestLinkDown:
    def test_down_then_up_on_schedule(self, env, tree):
        link = tree.link("edge-p0e0--agg-p0a0")
        controller = ChaosController(
            env,
            plan=plan_of(FaultSpec(kind="fabric.link_down",
                                   target=link.name, at=0.002,
                                   duration=0.003)),
            fabric=tree,
        )
        assert controller.start() == 1
        env.run(until=0.004)
        assert not link.up
        env.run(until=0.006)
        assert link.up
        assert [(kind, name) for kind, name, _ in controller.executed] == [
            ("fabric.link_down", link.name),
            ("fabric.link_up", link.name),
        ]

    def test_glob_target_hits_every_matching_link(self, env, tree):
        controller = ChaosController(
            env,
            plan=plan_of(FaultSpec(kind="fabric.link_down",
                                   target="edge-p0e0--agg-*", at=0.001)),
            fabric=tree,
        )
        controller.start()
        env.run(until=0.002)
        downed = [name for name, link in tree.links.items() if not link.up]
        assert downed == ["edge-p0e0--agg-p0a0", "edge-p0e0--agg-p0a1"]

    def test_queued_frames_drain_labelled(self, env):
        """Frames sitting in a bounded ring when the cable is pulled die
        accounted as ``link.down`` on the link's own ledger."""
        tree = FatTree(env, k=4, hosts_per_edge=1, seed=21,
                       queue_capacity=8)
        fwd = ForwardingEngine()
        src_host = tree.host("h-p0e0n0")
        src = src_host.create_attached_namespace("cl-a", domain="client:a")
        dst = tree.host("h-p1e0n0").create_attached_namespace(
            "cl-b", domain="client:b"
        )
        address = dst.device("eth0").primary_ip
        with tree.congestion():
            for port in range(6):
                fwd.send(src, address, 10_000 + port)
        # The rack link's edge-side ring now holds the burst.
        rack_link = tree.link("edge-p0e0--h-p0e0n0")
        controller = ChaosController(
            env,
            plan=plan_of(FaultSpec(kind="fabric.link_down",
                                   target="edge-p0e0--*", at=0.001)),
            fabric=tree,
        )
        controller.start()
        env.run(until=0.002)
        assert not rack_link.up
        total_drained = sum(
            link.drops.get("link.down", 0)
            for link in tree.links.values()
        )
        assert total_drained > 0
        # Drains account dead queue slots, not engine-counted frames:
        # the engine ledger stays conserved on its own terms.
        assert not run_checks(HealthScope.of(
            fabrics=(tree,), forwarding=fwd,
            namespaces=(src, dst),
        ))


class TestSwitchDown:
    def test_switch_kill_and_restore(self, env, tree):
        switch = tree.switch("agg-p0a0")
        controller = ChaosController(
            env,
            plan=plan_of(FaultSpec(kind="fabric.switch_down",
                                   target="agg-p0a0", at=0.002,
                                   duration=0.002)),
            fabric=tree,
        )
        controller.start()
        env.run(until=0.003)
        assert not switch.up
        env.run(until=0.005)
        assert switch.up
        kinds = [kind for kind, _, _ in controller.executed]
        assert kinds == ["fabric.switch_down", "fabric.switch_up"]

    def test_traffic_routes_around_a_dead_agg(self, env, tree):
        fwd = ForwardingEngine()
        src = tree.host("h-p0e0n0").create_attached_namespace(
            "cl-a", domain="client:a"
        )
        dst = tree.host("h-p2e0n0").create_attached_namespace(
            "cl-b", domain="client:b"
        )
        address = dst.device("eth0").primary_ip
        controller = ChaosController(
            env,
            plan=plan_of(FaultSpec(kind="fabric.switch_down",
                                   target="agg-p0a0", at=0.001)),
            fabric=tree,
        )
        controller.start()
        env.run(until=0.002)
        for port in range(12):
            assert fwd.send(src, address, 11_000 + port).delivered
        assert fwd.frames_delivered == 12
        assert not run_checks(HealthScope.of(
            fabrics=(tree,), forwarding=fwd, namespaces=(src, dst),
        ))

    def test_no_fabric_controller_is_inert(self, env, tree):
        controller = ChaosController(
            env,
            plan=plan_of(FaultSpec(kind="fabric.link_down",
                                   target="*", at=0.001)),
        )
        controller.start()
        env.run(until=0.002)
        assert controller.executed == []
        assert all(link.up for link in tree.links.values())

"""Traffic-aware flow scheduling: classification and elephant pinning."""

import pytest

from repro.fabric import (
    FatTree,
    TrafficAwareFlowScheduler,
    ecmp_index,
    flow_signature,
)
from repro.net import flows as net_flows
from repro.net.flows import FlowTable
from repro.net.forwarding import ForwardingEngine
from repro.sim import Environment

ELEPHANT = 8192
FRAMES = 8


@pytest.fixture
def tree():
    return FatTree(Environment(), k=4, hosts_per_edge=2, seed=5)


def client_of(tree, host_name):
    host = tree.host(host_name)
    return host.create_attached_namespace(
        f"cl-{host_name}", domain=f"client:{host_name}"
    )


def colliding_ports(tree, src_ip, dst_ips, edge_name, start=18_000):
    """Ports that make every (src, dst) flow hash onto one uplink."""
    fan_out = len(tree.switch(edge_name).uplinks)
    ports = [start]
    want = ecmp_index(
        flow_signature(src_ip, dst_ips[0], "tcp", ports[0]),
        edge_name, fan_out,
    )
    for dst_ip in dst_ips[1:]:
        port = ports[-1] + 1
        while ecmp_index(flow_signature(src_ip, dst_ip, "tcp", port),
                         edge_name, fan_out) != want:
            port += 1
        ports.append(port)
    return ports


class TestClassification:
    def test_split_by_bytes_heaviest_first(self, tree):
        table = FlowTable()
        for port, n_bytes in ((1, 100), (2, 9000), (3, 12_000)):
            table.record(
                net_flows.FlowKey("10.0.0.5", "10.1.0.5", "tcp", port, "c"),
                payload_bytes=n_bytes, delivered=True, drop_reason=None,
                dst_label="d", trail=(), hop_count=4,
            )
        scheduler = TrafficAwareFlowScheduler(tree, elephant_bytes=5000)
        elephants, mice = scheduler.classify(table)
        assert [key.dst_port for key, _ in elephants] == [3, 2]
        assert [key.dst_port for key, _ in mice] == [1]


class TestRebalance:
    def drive(self, tree, fwd, src, dsts, ports):
        table = FlowTable()
        with net_flows.use(table):
            for dst, port in zip(dsts, ports):
                address = dst.device("eth0").primary_ip
                for _ in range(FRAMES):
                    fwd.send(src, address, port, payload_bytes=ELEPHANT)
        return table

    def test_colliding_elephants_spread_over_uplinks(self, tree):
        fwd = ForwardingEngine()
        src = client_of(tree, "h-p0e0n0")
        dsts = [client_of(tree, "h-p1e0n0"), client_of(tree, "h-p2e0n0")]
        src_ip = str(src.device("eth0").primary_ip)
        dst_ips = [str(d.device("eth0").primary_ip) for d in dsts]
        ports = colliding_ports(tree, src_ip, dst_ips, "edge-p0e0")

        table = self.drive(tree, fwd, src, dsts, ports)
        # The engineered collision: one uplink carried everything.
        loaded = [link for link in tree.uplink_links("edge-p0e0").values()
                  if link.frames_carried]
        assert len(loaded) == 1

        scheduler = TrafficAwareFlowScheduler(
            tree, elephant_bytes=FRAMES * ELEPHANT // 2
        )
        tree.reset_link_counters()
        decisions = scheduler.rebalance(table)
        assert decisions  # every elephant pinned at every choice tier
        assert any(d.moved for d in decisions)
        edge_pins = {d.port for d in decisions if d.switch == "edge-p0e0"}
        assert len(edge_pins) == 2  # one elephant per uplink

        self.drive(tree, fwd, src, dsts, ports)
        loads = [link.bytes_carried
                 for link in tree.uplink_links("edge-p0e0").values()]
        assert min(loads) > 0  # both uplinks now carry an elephant
        assert max(loads) < sum(loads)

    def test_non_fabric_flows_ignored(self, tree):
        table = FlowTable()
        table.record(
            net_flows.FlowKey("192.168.1.2", "192.168.1.3", "tcp", 80, "x"),
            payload_bytes=10**6, delivered=True, drop_reason=None,
            dst_label="y", trail=(), hop_count=2,
        )
        scheduler = TrafficAwareFlowScheduler(tree, elephant_bytes=1)
        assert scheduler.rebalance(table) == []
        assert all(not s.pins for s in tree.switches.values())

    def test_rebalance_is_idempotent_on_the_same_stats(self, tree):
        fwd = ForwardingEngine()
        src = client_of(tree, "h-p0e0n0")
        dsts = [client_of(tree, "h-p1e0n0"), client_of(tree, "h-p2e0n0")]
        src_ip = str(src.device("eth0").primary_ip)
        dst_ips = [str(d.device("eth0").primary_ip) for d in dsts]
        ports = colliding_ports(tree, src_ip, dst_ips, "edge-p0e0")
        table = self.drive(tree, fwd, src, dsts, ports)
        scheduler = TrafficAwareFlowScheduler(
            tree, elephant_bytes=FRAMES * ELEPHANT // 2
        )
        tree.reset_link_counters()
        first = {(d.signature, d.switch): d.port
                 for d in scheduler.rebalance(table)}
        tree.reset_link_counters()
        second = {(d.signature, d.switch): d.port
                  for d in scheduler.rebalance(table)}
        assert first == second
